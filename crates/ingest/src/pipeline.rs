//! The background ingestion process.
//!
//! Stages, in the paper's order: decrypt (client key from the KMS) →
//! validate/curate → malware scan (posting detections to the malware
//! blockchain channel) → consent check → de-identify → anonymization
//! verification → encrypt-at-rest with a *per-record* key (so secure
//! deletion can crypto-shred exactly one record) → store in the data lake
//! with a reference id → anchor `ingested`/`anonymized` provenance events
//! on the ledger. Every upload gets a [`StatusUrl`] whose state advances
//! through [`IngestionStatus`].
//!
//! # Concurrency model (worker pool + sequence-numbered merge)
//!
//! The stage sequence is split into two phases so the pipeline can use
//! every core without giving up determinism:
//!
//! * **Prepare** (parallel, per-record pure): decrypt → validate →
//!   malware scan → de-identify + anonymization verification. These
//!   stages read shared services but mutate nothing except the upload's
//!   own status, so `M` workers run them concurrently.
//! * **Commit** (serialized, submission order): consent apply/check →
//!   encrypt-at-rest + data-lake write → provenance anchoring. The
//!   committer consumes prepared results through a reorder buffer keyed
//!   by submission sequence number, so commits — and therefore consent
//!   registry mutations, record-key RNG draws, reference-id assignment
//!   and ledger anchor order — are byte-identical for *any* worker
//!   count (the determinism regression test pins workers ∈ {1, 2, 8}).
//!
//! Rejection priority is preserved: although de-identification now runs
//! before the consent check in wall time, the committer reports a
//! consent rejection ahead of an anonymization rejection, matching the
//! paper's stage order. [`IngestionPipeline::process_all_parallel`]
//! bounds in-flight prepares (backpressure) and is wired into the same
//! resilience ([`fault_points`]) and telemetry (`ingest.pool.*`) layers
//! as the serial path.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use hc_access::consent::{ConsentRegistry, ConsentScope};
use hc_common::clock::SimClock;
use hc_common::fault::{FaultInjector, FaultKind};
use hc_common::id::{GroupId, IngestionId, KeyId, PatientId, Principal, ReferenceId};
use hc_resilience::{DeadLetterQueue, ReplayReport, RetryPolicy};
use hc_crypto::aead::Sealed;
use hc_crypto::kms::KeyManagementSystem;
use hc_crypto::sha256;
use hc_fhir::bundle::Bundle;
use hc_fhir::resource::Resource;
use hc_fhir::validation::Validator;
use hc_ledger::block::Transaction;
use hc_ledger::provenance::{ProvenanceAction, ProvenanceEvent, ProvenanceNetwork};
use hc_privacy::phi::{deidentify_bundle, DeidConfig};
use hc_privacy::verify::scan_resource_for_phi;
use hc_storage::datalake::DataLake;

use crate::scanner::MalwareScanner;
use crate::status::{IngestionStatus, StatusUrl};

/// The credential a registered device uploads under: its patient identity
/// and its platform-issued encryption key.
#[derive(Clone, Copy, Debug)]
pub struct DeviceCredential {
    /// The patient the device belongs to.
    pub patient: PatientId,
    /// The device's KMS key (created at registration).
    pub key: KeyId,
}

/// Fault-point names the pipeline consults on its [`FaultInjector`]
/// (see [`hc_common::fault`]). Scheduling a fault at one of these names
/// makes the corresponding stage fail.
pub mod fault_points {
    /// Decryption / integrity verification.
    pub const DECRYPT: &str = "ingest.decrypt";
    /// Bundle parsing and validation.
    pub const VALIDATE: &str = "ingest.validate";
    /// Malware filtration.
    pub const SCAN: &str = "ingest.scan";
    /// Consent verification.
    pub const CONSENT: &str = "ingest.consent";
    /// De-identification + anonymization verification.
    pub const DEID: &str = "ingest.deid";
    /// Encrypt-at-rest and data-lake write.
    pub const STORE: &str = "ingest.store";
    /// Stateful partition between the pipeline and the provenance
    /// ledger: while active, anchors are buffered, not recorded.
    pub const LEDGER_PARTITION: &str = "ledger.partition";
}

/// Counters the monitoring service scrapes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PipelineStats {
    /// Uploads received.
    pub received: u64,
    /// Uploads stored successfully.
    pub stored: u64,
    /// Rejected at decryption (integrity/authenticity).
    pub rejected_integrity: u64,
    /// Rejected at validation.
    pub rejected_validation: u64,
    /// Rejected by the malware filter.
    pub rejected_malware: u64,
    /// Rejected for missing consent.
    pub rejected_consent: u64,
    /// Rejected by anonymization verification.
    pub rejected_anonymization: u64,
    /// Stage attempts retried after a transient fault.
    pub retried: u64,
    /// Uploads parked in the dead-letter queue.
    pub dead_lettered: u64,
    /// Provenance anchors buffered while the ledger was unreachable.
    pub anchors_buffered: u64,
    /// Buffered anchors successfully replayed after the ledger healed.
    pub anchors_replayed: u64,
}

/// State shared between the pipeline and the export service.
pub(crate) struct SharedState {
    pub(crate) kms: Arc<KeyManagementSystem>,
    pub(crate) lake: Arc<Mutex<DataLake>>,
    pub(crate) consent: Arc<Mutex<ConsentRegistry>>,
    pub(crate) provenance: Arc<Mutex<ProvenanceNetwork>>,
    /// Per-record storage keys: shredding one deletes one record.
    pub(crate) record_keys: Mutex<HashMap<ReferenceId, KeyId>>,
    /// Reference-id → (original id → pseudonym) maps; "the reference-id
    /// to identity the mapping is stored in the metadata".
    pub(crate) pseudonyms: Mutex<HashMap<ReferenceId, HashMap<String, String>>>,
    /// The study this pipeline ingests for.
    pub(crate) study: GroupId,
    /// The study's display name (matched against in-bundle consents).
    pub(crate) study_name: String,
    /// Platform signing key for leakage-free redactable record sharing.
    pub(crate) share_signer: Mutex<hc_crypto::ots::MerkleSigner>,
    /// The verification key for shared redactable documents.
    pub(crate) share_public: hc_crypto::ots::MerklePublicKey,
}

#[derive(Clone)]
struct Job {
    id: IngestionId,
    credential: DeviceCredential,
    sealed: Sealed,
}

/// Which [`PipelineStats`] counter a prepare-phase rejection bumps.
/// Counting happens in the ordered commit phase so worker interleaving
/// cannot reorder ledger posts relative to status updates.
#[derive(Clone, Copy, Debug)]
enum RejectCounter {
    Integrity,
    Validation,
    Malware,
}

/// Outcome of the parallel *prepare* phase for one job.
#[derive(Debug)]
enum Prepared {
    /// Every parallel stage passed; awaits the ordered commit phase.
    Ready(Box<ReadyJob>),
    /// Terminally rejected during prepare. A malware detection carries
    /// the blockchain transaction to post (in submission order).
    Rejected {
        stage: String,
        reason: String,
        counter: RejectCounter,
        malware_tx: Option<Transaction>,
    },
    /// A stage fault exhausted its retry budget during prepare.
    DeadLettered { stage: String, reason: String },
}

/// A job that passed decrypt, validation, malware scan and
/// de-identification, carrying everything the commit phase needs.
#[derive(Debug)]
struct ReadyJob {
    /// This study's in-bundle consent resources, in bundle order.
    consents: Vec<(String, bool)>,
    /// Serialized de-identified bundle (the at-rest plaintext).
    deid_bytes: Vec<u8>,
    /// Hash of `deid_bytes`, anchored with the provenance events.
    data_hash: sha256::Digest,
    /// Original-id → pseudonym map produced by de-identification.
    pseudonyms: HashMap<String, String>,
    /// Residual PHI found by anonymization verification. Rejection is
    /// reported in commit, *after* the consent check, so the serial
    /// stage priority (consent before anonymization) is preserved.
    violations: Vec<String>,
}

/// Stage names in pipeline order, used for `ingest.stage.<name>.wall_ns`
/// histograms (the seventh entry times provenance anchoring).
const STAGE_NAMES: [&str; 7] =
    ["decrypt", "validate", "malware_scan", "consent", "deid", "store", "anchor"];

/// Registry handles, installed by [`IngestionPipeline::enable_telemetry`].
///
/// Stage histograms record *wall* nanoseconds a job spent in each stage
/// it passed; jobs rejected or dead-lettered at a stage count in the
/// outcome counters instead.
struct PipelineInstruments {
    stage_wall: Vec<hc_telemetry::Histogram>,
    received: hc_telemetry::Counter,
    stored: hc_telemetry::Counter,
    rejected: hc_telemetry::Counter,
    dead_lettered: hc_telemetry::Counter,
    retries: hc_telemetry::Counter,
    queue_depth: hc_telemetry::Gauge,
    dlq_depth: hc_telemetry::Gauge,
    anchors_buffered: hc_telemetry::Gauge,
    anchors_replayed: hc_telemetry::Counter,
    pool_workers: hc_telemetry::Gauge,
    pool_in_flight: hc_telemetry::Gauge,
    pool_reorder_depth: hc_telemetry::Gauge,
}

/// Resilience state, installed by [`IngestionPipeline::enable_resilience`].
struct Resilience {
    clock: SimClock,
    injector: FaultInjector,
    retry: RetryPolicy,
    rng: rand::rngs::StdRng,
    dlq: DeadLetterQueue<Job>,
    buffered_anchors: Vec<ProvenanceEvent>,
}

/// The ingestion pipeline.
pub struct IngestionPipeline {
    pub(crate) shared: Arc<SharedState>,
    scanner: MalwareScanner,
    validator: Validator,
    deid: DeidConfig,
    tx: Sender<Job>,
    rx: Receiver<Job>,
    statuses: Arc<Mutex<HashMap<IngestionId, IngestionStatus>>>,
    stats: Mutex<PipelineStats>,
    rng: Mutex<rand::rngs::StdRng>,
    next_ingestion: Mutex<u128>,
    resilience: Mutex<Option<Resilience>>,
    telemetry: Mutex<Option<Arc<PipelineInstruments>>>,
}

impl std::fmt::Debug for IngestionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestionPipeline")
            .field("study", &self.shared.study_name)
            .field("pending", &self.rx.len())
            .finish()
    }
}

/// Everything the pipeline needs from the rest of the platform.
pub struct PipelineDeps {
    /// The key management system.
    pub kms: Arc<KeyManagementSystem>,
    /// The data lake.
    pub lake: Arc<Mutex<DataLake>>,
    /// The consent registry.
    pub consent: Arc<Mutex<ConsentRegistry>>,
    /// The provenance blockchain network.
    pub provenance: Arc<Mutex<ProvenanceNetwork>>,
}

impl IngestionPipeline {
    /// Builds a pipeline for one study.
    pub fn new(
        deps: PipelineDeps,
        study: GroupId,
        study_name: &str,
        seed: u64,
    ) -> Self {
        // Producers and the worker share one thread in the simulation; a
        // bounded queue would deadlock on enqueue before `process_all`
        // ever runs. Backpressure comes from the job budget instead.
        // hc-lint: allow(sync-unbounded-channel)
        let (tx, rx) = unbounded();
        let mut signer_rng = hc_common::rng::seeded_stream(seed, 910);
        let share_signer = hc_crypto::ots::MerkleSigner::generate(&mut signer_rng, 6);
        let share_public = share_signer.public_key();
        IngestionPipeline {
            shared: Arc::new(SharedState {
                kms: deps.kms,
                lake: deps.lake,
                consent: deps.consent,
                provenance: deps.provenance,
                record_keys: Mutex::new(HashMap::new()),
                pseudonyms: Mutex::new(HashMap::new()),
                study,
                study_name: study_name.to_owned(),
                share_signer: Mutex::new(share_signer),
                share_public,
            }),
            scanner: MalwareScanner::new(),
            validator: Validator::strict(),
            deid: DeidConfig::default(),
            tx,
            rx,
            statuses: Arc::new(Mutex::new(HashMap::new())),
            stats: Mutex::new(PipelineStats::default()),
            rng: Mutex::new(hc_common::rng::seeded_stream(seed, 909)),
            next_ingestion: Mutex::new(0),
            resilience: Mutex::new(None),
            telemetry: Mutex::new(None),
        }
    }

    /// Turns on telemetry: per-stage wall-clock histograms
    /// (`ingest.stage.<name>.wall_ns`), outcome counters and queue/DLQ
    /// depth gauges, all under the `ingest.*` prefix. The existing
    /// [`PipelineStats`] counters keep working unchanged.
    pub fn enable_telemetry(&self, registry: &hc_telemetry::Registry) {
        *self.telemetry.lock() = Some(Arc::new(PipelineInstruments {
            stage_wall: STAGE_NAMES
                .iter()
                .map(|s| registry.histogram(&format!("ingest.stage.{s}.wall_ns")))
                .collect(),
            received: registry.counter("ingest.jobs.received"),
            stored: registry.counter("ingest.jobs.stored"),
            rejected: registry.counter("ingest.jobs.rejected"),
            dead_lettered: registry.counter("ingest.jobs.dead_lettered"),
            retries: registry.counter("ingest.retry.count"),
            queue_depth: registry.gauge("ingest.queue.depth"),
            dlq_depth: registry.gauge("ingest.dlq.depth"),
            anchors_buffered: registry.gauge("ingest.anchors.buffered"),
            anchors_replayed: registry.counter("ingest.anchors.replayed"),
            pool_workers: registry.gauge("ingest.pool.workers"),
            pool_in_flight: registry.gauge("ingest.pool.in_flight"),
            pool_reorder_depth: registry.gauge("ingest.pool.reorder_depth"),
        }));
    }

    /// The installed telemetry handles, if any (cheap `Arc` clone).
    fn instruments(&self) -> Option<Arc<PipelineInstruments>> {
        self.telemetry.lock().clone()
    }

    /// Turns on the resilience layer: stage-level retries against
    /// `injector` faults, dead-lettering of poison uploads, and
    /// buffering of provenance anchors while `ledger.partition` is
    /// active (degraded mode). Backoff delays advance `clock`.
    pub fn enable_resilience(&self, clock: SimClock, injector: FaultInjector, seed: u64) {
        *self.resilience.lock() = Some(Resilience {
            clock,
            injector,
            retry: RetryPolicy::new(4, hc_common::clock::SimDuration::from_micros(100)),
            rng: hc_common::rng::seeded_stream(seed, 911),
            dlq: DeadLetterQueue::new(256),
            buffered_anchors: Vec::new(),
        });
    }

    /// Replaces the per-stage retry policy (resilience must be enabled).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        if let Some(res) = self.resilience.lock().as_mut() {
            res.retry = policy;
        }
    }

    /// Whether the pipeline is operating in degraded mode (anchors
    /// buffered, waiting for the ledger partition to heal).
    pub fn is_degraded(&self) -> bool {
        self.resilience
            .lock()
            .as_ref()
            .is_some_and(|r| !r.buffered_anchors.is_empty())
    }

    /// Number of provenance anchors currently buffered.
    pub fn buffered_anchor_count(&self) -> usize {
        self.resilience
            .lock()
            .as_ref()
            .map_or(0, |r| r.buffered_anchors.len())
    }

    /// Replays buffered anchors onto the (healed) ledger, oldest first,
    /// stopping at the first anchor that still fails. Returns how many
    /// committed.
    pub fn replay_buffered_anchors(&self) -> usize {
        let events = match self.resilience.lock().as_mut() {
            Some(res) => std::mem::take(&mut res.buffered_anchors),
            None => return 0,
        };
        let mut replayed = 0;
        let mut remaining = events.into_iter();
        for event in remaining.by_ref() {
            let outcome = self.shared.provenance.lock().record(&event);
            if outcome.is_ok() {
                replayed += 1;
                self.stats.lock().anchors_replayed += 1;
            } else {
                // Still partitioned: put this one back and stop.
                if let Some(res) = self.resilience.lock().as_mut() {
                    res.buffered_anchors.push(event);
                    res.buffered_anchors.extend(remaining);
                }
                break;
            }
        }
        if let Some(inst) = self.instruments() {
            inst.anchors_replayed.add(replayed as u64);
            inst.anchors_buffered.set(self.buffered_anchor_count() as i64);
        }
        replayed
    }

    /// Dead letters currently parked, as `(ingestion, reason)` pairs.
    pub fn dead_letters(&self) -> Vec<(IngestionId, String)> {
        self.resilience.lock().as_ref().map_or_else(Vec::new, |r| {
            r.dlq
                .iter()
                .map(|l| (l.item.id, l.reason.clone()))
                .collect()
        })
    }

    /// Re-runs every dead-lettered upload through the full stage
    /// sequence. Uploads that fail again are re-parked.
    pub fn replay_dead_letters(&self) -> ReplayReport {
        let letters = match self.resilience.lock().as_mut() {
            Some(res) => res.dlq.drain(),
            None => return ReplayReport::default(),
        };
        let mut report = ReplayReport::default();
        for letter in letters {
            let outcome = self.run_stages(&letter.item);
            if let IngestionStatus::DeadLettered { ref stage, ref reason } = outcome {
                report.requeued += 1;
                if let Some(res) = self.resilience.lock().as_mut() {
                    let at = res.clock.now();
                    res.dlq.push(
                        letter.item.clone(),
                        format!("{stage}: {reason}"),
                        letter.attempts + 1,
                        at,
                    );
                }
            } else {
                report.replayed += 1;
            }
            self.statuses.lock().insert(letter.item.id, outcome);
        }
        report
    }

    /// Replaces the malware scanner (e.g. to add signatures).
    pub fn set_scanner(&mut self, scanner: MalwareScanner) {
        self.scanner = scanner;
    }

    /// Registers a patient device: issues its KMS key, authorized for the
    /// device itself and the ingestion service.
    pub fn register_device(&self, patient: PatientId) -> DeviceCredential {
        let mut rng = self.rng.lock();
        let key = self.shared.kms.create_key(
            &mut *rng,
            &[
                Principal::Device(patient),
                Principal::Service("ingest".into()),
            ],
        );
        DeviceCredential { patient, key }
    }

    /// Client-side helper: seals a bundle under the device credential
    /// (models the enhanced client encrypting before upload).
    ///
    /// # Errors
    ///
    /// Propagates KMS errors (unknown key, unauthorized device).
    pub fn seal_upload(
        &self,
        credential: &DeviceCredential,
        bundle: &Bundle,
    ) -> Result<Sealed, hc_crypto::kms::KmsError> {
        self.shared.kms.seal(
            &Principal::Device(credential.patient),
            credential.key,
            &bundle.to_bytes(),
            &credential.patient.as_u128().to_le_bytes(),
        )
    }

    /// Seals arbitrary bytes under the device credential — models a
    /// buggy or malicious client shipping a payload that is not a valid
    /// bundle (a *poison* upload the resilience layer dead-letters).
    ///
    /// # Errors
    ///
    /// Propagates KMS errors (unknown key, unauthorized device).
    pub fn seal_raw_upload(
        &self,
        credential: &DeviceCredential,
        payload: &[u8],
    ) -> Result<Sealed, hc_crypto::kms::KmsError> {
        self.shared.kms.seal(
            &Principal::Device(credential.patient),
            credential.key,
            payload,
            &credential.patient.as_u128().to_le_bytes(),
        )
    }

    /// Accepts an upload into the staging area and returns its status URL.
    pub fn submit(&self, credential: DeviceCredential, sealed: Sealed) -> StatusUrl {
        let id = {
            let mut next = self.next_ingestion.lock();
            *next += 1;
            IngestionId::from_raw(*next)
        };
        self.statuses.lock().insert(id, IngestionStatus::Received);
        self.stats.lock().received += 1;
        if self.tx
            .send(Job {
                id,
                credential,
                sealed,
            })
            .is_err()
        {
            // Worker threads are gone (shutdown race): dead-letter the
            // upload so the caller sees a terminal status, not a panic.
            self.statuses.lock().insert(
                id,
                IngestionStatus::DeadLettered {
                    stage: "submit".to_owned(),
                    reason: "ingest worker queue closed".to_owned(),
                },
            );
            return StatusUrl(id);
        }
        if let Some(inst) = self.instruments() {
            inst.received.inc();
            inst.queue_depth.set(self.rx.len() as i64);
        }
        StatusUrl(id)
    }

    /// Polls an upload's status.
    pub fn status(&self, url: StatusUrl) -> Option<IngestionStatus> {
        self.statuses.lock().get(&url.0).cloned()
    }

    /// Terminal bookkeeping every processing path shares: dead-letter
    /// parking, outcome counters/gauges, and the status-map write.
    fn finish_job(&self, job: &Job, outcome: IngestionStatus) {
        if let IngestionStatus::DeadLettered { ref stage, ref reason } = outcome {
            if let Some(res) = self.resilience.lock().as_mut() {
                let at = res.clock.now();
                let attempts = res.retry.max_attempts();
                res.dlq
                    .push(job.clone(), format!("{stage}: {reason}"), attempts, at);
            }
            self.stats.lock().dead_lettered += 1;
        }
        if let Some(inst) = self.instruments() {
            match &outcome {
                IngestionStatus::Stored { .. } => inst.stored.inc(),
                IngestionStatus::Rejected { .. } => inst.rejected.inc(),
                IngestionStatus::DeadLettered { .. } => {
                    inst.dead_lettered.inc();
                    let depth =
                        self.resilience.lock().as_ref().map_or(0, |r| r.dlq.len());
                    inst.dlq_depth.set(depth as i64);
                }
                _ => {}
            }
            inst.queue_depth.set(self.rx.len() as i64);
        }
        self.statuses.lock().insert(job.id, outcome);
    }

    /// Processes one queued upload, returning its id; `None` if idle.
    pub fn process_one(&self) -> Option<IngestionId> {
        let job = self.rx.try_recv().ok()?;
        let id = job.id;
        let outcome = self.run_stages(&job);
        self.finish_job(&job, outcome);
        Some(id)
    }

    /// Drains the queue inline.
    pub fn process_all(&self) -> usize {
        let mut n = 0;
        while self.process_one().is_some() {
            n += 1;
        }
        n
    }

    /// Drains the queue on a bounded pool of `workers` prepare threads
    /// feeding a sequence-numbered merge (the "asynchronous
    /// communication process" of §II-B, now multi-core).
    ///
    /// Workers run the parallel *prepare* phase; the calling thread
    /// dispatches jobs (bounded in-flight for backpressure) and commits
    /// prepared results strictly in submission order through a reorder
    /// buffer. Stored records, provenance anchor order, consent registry
    /// state and [`PipelineStats`] are therefore identical to the serial
    /// [`IngestionPipeline::process_all`] path for any worker count.
    /// Returns the number of jobs processed.
    pub fn process_all_parallel(&self, workers: usize) -> usize {
        let workers = workers.max(1);
        let inst = self.instruments();
        if let Some(inst) = &inst {
            inst.pool_workers.set(workers as i64);
        }
        hc_common::conc::pool::ordered_pipeline(
            workers,
            &mut || self.rx.try_recv().ok(),
            &|job| self.prepare_job(job),
            &mut |job, prepared| {
                let outcome = self.commit_outcome(&job, prepared);
                self.finish_job(&job, outcome);
            },
            &mut |progress| {
                if let Some(inst) = &inst {
                    inst.pool_in_flight.set(progress.in_flight as i64);
                    inst.pool_reorder_depth.set(progress.reorder_depth as i64);
                }
            },
        )
    }

    fn set_status(&self, id: IngestionId, status: IngestionStatus) {
        self.statuses.lock().insert(id, status);
    }

    fn reject(&self, stage: &str, reason: String) -> IngestionStatus {
        IngestionStatus::Rejected {
            stage: stage.to_owned(),
            reason,
        }
    }

    /// Consults the fault injector at a stage boundary. Transient
    /// faults are retried with backoff (advancing the resilience
    /// clock); crash faults, or transients that outlast the attempt
    /// budget, fail the stage.
    fn stage_guard(&self, point: &str) -> Result<(), String> {
        // The retry loop mutates resilience state (budgets, backoff
        // clock) on every attempt and the attempt budget bounds it; the
        // pipeline is single-threaded per job, so nothing else contends.
        // hc-lint: allow(lock-held-long)
        let mut guard = self.resilience.lock();
        let Some(res) = guard.as_mut() else {
            return Ok(());
        };
        let mut attempt = 0u32;
        loop {
            match res.injector.check(point) {
                None => return Ok(()),
                Some(FaultKind::LatencySpike(delay)) => {
                    // Absorbed: the stage just takes longer.
                    res.clock.advance(delay);
                    return Ok(());
                }
                Some(FaultKind::TransientError | FaultKind::NetworkPartition) => {
                    attempt += 1;
                    if attempt >= res.retry.max_attempts() {
                        return Err(format!(
                            "transient fault persisted across {attempt} attempts"
                        ));
                    }
                    let delay = res.retry.delay_after(attempt, &mut res.rng);
                    res.clock.advance(delay);
                    self.stats.lock().retried += 1;
                    if let Some(inst) = self.instruments() {
                        inst.retries.inc();
                    }
                }
                Some(kind @ (FaultKind::HostCrash | FaultKind::StorageCrash)) => {
                    return Err(format!("unrecoverable fault: {kind:?}"));
                }
            }
        }
    }

    /// Anchors a provenance event, buffering it instead when the ledger
    /// is partitioned (injected or real) and resilience is enabled.
    fn anchor(&self, event: ProvenanceEvent) {
        {
            let mut guard = self.resilience.lock();
            if let Some(res) = guard.as_mut() {
                if res.injector.is_active(fault_points::LEDGER_PARTITION) {
                    res.buffered_anchors.push(event);
                    let depth = res.buffered_anchors.len();
                    self.stats.lock().anchors_buffered += 1;
                    if let Some(inst) = self.instruments() {
                        inst.anchors_buffered.set(depth as i64);
                    }
                    return;
                }
            }
        }
        let outcome = self.shared.provenance.lock().record(&event);
        if outcome.is_err() {
            // A real consensus failure (e.g. partitioned quorum): the
            // network dropped the batch, so keep our copy for replay.
            let mut guard = self.resilience.lock();
            if let Some(res) = guard.as_mut() {
                res.buffered_anchors.push(event);
                let depth = res.buffered_anchors.len();
                self.stats.lock().anchors_buffered += 1;
                if let Some(inst) = self.instruments() {
                    inst.anchors_buffered.set(depth as i64);
                }
            }
        }
    }

    fn dead_letter_status(stage: &str, reason: String) -> IngestionStatus {
        IngestionStatus::DeadLettered {
            stage: stage.to_owned(),
            reason,
        }
    }

    /// The full serial stage sequence: parallel-safe prepare followed
    /// immediately by the ordered commit (used by the inline path and
    /// dead-letter replay; the worker pool calls the halves directly).
    fn run_stages(&self, job: &Job) -> IngestionStatus {
        let prepared = self.prepare_job(job);
        self.commit_outcome(job, prepared)
    }

    /// The parallel *prepare* phase: decrypt → validate → malware scan
    /// → de-identify + anonymization verification. Touches no shared
    /// mutable platform state beyond this upload's own status entry (and
    /// the commutative retry/stats counters inside [`Self::stage_guard`]),
    /// so any number of workers may run it concurrently.
    fn prepare_job(&self, job: &Job) -> Prepared {
        let inst = self.instruments();
        // Stage timings feed the `ingest.stage.*_wall_ns` histograms,
        // which deliberately measure wall time (pipeline overhead), not
        // simulated latency — sim costs are charged via the DES clock.
        // hc-lint: allow(det-wallclock)
        let mut stage_start = std::time::Instant::now();
        // Records the wall time of stage `idx` and restarts the stopwatch.
        let mark = |idx: usize, start: &mut std::time::Instant| {
            if let Some(inst) = &inst {
                // idx is a STAGE_NAMES index; the histogram Vec mirrors it.
                inst.stage_wall[idx].record(start.elapsed().as_nanos() as u64); // hc-lint: allow(panic-index)
            }
            // hc-lint: allow(det-wallclock) — wall-clock stopwatch restart (see above)
            *start = std::time::Instant::now();
        };

        // 1. Decrypt + integrity/authenticity verification.
        self.set_status(job.id, IngestionStatus::Decrypting);
        if let Err(reason) = self.stage_guard(fault_points::DECRYPT) {
            return Prepared::DeadLettered {
                stage: "decrypt".to_owned(),
                reason,
            };
        }
        let ingest = Principal::Service("ingest".into());
        let bytes = match self.shared.kms.open(
            &ingest,
            job.credential.key,
            &job.sealed,
            &job.credential.patient.as_u128().to_le_bytes(),
        ) {
            Ok(b) => b,
            Err(e) => {
                return Prepared::Rejected {
                    stage: "decrypt".to_owned(),
                    reason: e.to_string(),
                    counter: RejectCounter::Integrity,
                    malware_tx: None,
                }
            }
        };
        mark(0, &mut stage_start);

        // 2. Validate / curate.
        self.set_status(job.id, IngestionStatus::Validating);
        if let Err(reason) = self.stage_guard(fault_points::VALIDATE) {
            return Prepared::DeadLettered {
                stage: "validate".to_owned(),
                reason,
            };
        }
        let bundle = match Bundle::from_bytes(&bytes) {
            Ok(b) => b,
            Err(e) => {
                // A payload that decrypts cleanly but cannot even be
                // parsed is a poison message: with resilience on it is
                // parked for triage instead of silently dropped.
                if self.resilience.lock().is_some() {
                    self.stats.lock().rejected_validation += 1;
                    return Prepared::DeadLettered {
                        stage: "validate".to_owned(),
                        reason: format!("malformed bundle: {e}"),
                    };
                }
                return Prepared::Rejected {
                    stage: "validate".to_owned(),
                    reason: format!("malformed bundle: {e}"),
                    counter: RejectCounter::Validation,
                    malware_tx: None,
                };
            }
        };
        let report = self.validator.validate_bundle(&bundle);
        if !report.is_valid() {
            let first = report
                .issues
                .first()
                .map(|i| i.message.clone())
                .unwrap_or_default();
            return Prepared::Rejected {
                stage: "validate".to_owned(),
                reason: first,
                counter: RejectCounter::Validation,
                malware_tx: None,
            };
        }
        mark(1, &mut stage_start);

        // 3. Malware filtration.
        self.set_status(job.id, IngestionStatus::Scanning);
        if let Err(reason) = self.stage_guard(fault_points::SCAN) {
            return Prepared::DeadLettered {
                stage: "malware-scan".to_owned(),
                reason,
            };
        }
        if let Some(detection) = self.scanner.scan(&bytes) {
            // "update the blockchain with the information that the
            // corresponding record … contains malware". The transaction
            // is built here but submitted by the ordered commit phase so
            // the malware channel's history is worker-count independent.
            let payload = format!(
                "scanner={};record={};offset={}",
                detection.signature_name, job.id, detection.offset
            );
            let clock = SimClock::new();
            let tx = Transaction {
                id: hc_common::id::TxId::from_raw(job.id.as_u128()),
                channel: "malware".into(),
                kind: "malware-detected".into(),
                payload: payload.into_bytes(),
                submitter: "malware-filter".into(),
                timestamp: clock.now(),
            };
            return Prepared::Rejected {
                stage: "malware-scan".to_owned(),
                reason: format!("signature {}", detection.signature_name),
                counter: RejectCounter::Malware,
                malware_tx: Some(tx),
            };
        }
        mark(2, &mut stage_start);

        // 4. De-identify + anonymization verification (stage index 4;
        // the consent stage, index 3, runs in the commit phase).
        self.set_status(job.id, IngestionStatus::DeIdentifying);
        if let Err(reason) = self.stage_guard(fault_points::DEID) {
            return Prepared::DeadLettered {
                stage: "de-identify".to_owned(),
                reason,
            };
        }
        let deidentified = deidentify_bundle(
            &bundle,
            &self.deid,
            &self.shared.study.as_u128().to_le_bytes(),
        );
        let mut violations = Vec::new();
        for resource in &deidentified.bundle {
            violations.extend(scan_resource_for_phi(resource));
        }
        mark(4, &mut stage_start);

        let consents = bundle
            .entries
            .iter()
            .filter_map(|resource| match resource {
                Resource::Consent(c) if c.study == self.shared.study_name => {
                    Some((c.study.clone(), c.granted))
                }
                _ => None,
            })
            .collect();
        let deid_bytes = deidentified.bundle.to_bytes();
        let data_hash = sha256::hash(&deid_bytes);
        Prepared::Ready(Box::new(ReadyJob {
            consents,
            deid_bytes,
            data_hash,
            pseudonyms: deidentified.pseudonyms,
            violations,
        }))
    }

    /// The ordered half of the pipeline: counts prepare-phase
    /// rejections, posts malware detections to the blockchain, and runs
    /// the commit stages for jobs that are ready. Must be called in
    /// submission order for deterministic output.
    fn commit_outcome(&self, job: &Job, prepared: Prepared) -> IngestionStatus {
        match prepared {
            Prepared::Ready(ready) => self.commit_prepared(job, *ready),
            Prepared::Rejected {
                stage,
                reason,
                counter,
                malware_tx,
            } => {
                {
                    let mut stats = self.stats.lock();
                    match counter {
                        RejectCounter::Integrity => stats.rejected_integrity += 1,
                        RejectCounter::Validation => stats.rejected_validation += 1,
                        RejectCounter::Malware => stats.rejected_malware += 1,
                    }
                }
                if let Some(tx) = malware_tx {
                    let mut provenance = self.shared.provenance.lock();
                    let _ = provenance.ledger_mut().submit(vec![tx]);
                }
                self.reject(&stage, reason)
            }
            Prepared::DeadLettered { stage, reason } => {
                Self::dead_letter_status(&stage, reason)
            }
        }
    }

    /// The serialized *commit* phase: consent apply/check →
    /// encrypt-at-rest + data-lake write → provenance anchoring. All
    /// consent registry mutations, record-key RNG draws, reference-id
    /// assignment and ledger anchors happen here, in submission order.
    fn commit_prepared(&self, job: &Job, ready: ReadyJob) -> IngestionStatus {
        let inst = self.instruments();
        // Commit-stage timings; wall-clock by design (see prepare_job).
        // hc-lint: allow(det-wallclock)
        let mut stage_start = std::time::Instant::now();
        let mark = |idx: usize, start: &mut std::time::Instant| {
            if let Some(inst) = &inst {
                // idx is a STAGE_NAMES index; the histogram Vec mirrors it.
                inst.stage_wall[idx].record(start.elapsed().as_nanos() as u64); // hc-lint: allow(panic-index)
            }
            // hc-lint: allow(det-wallclock) — wall-clock stopwatch restart (see above)
            *start = std::time::Instant::now();
        };

        // 5. Consent: apply in-bundle consents, then verify.
        self.set_status(job.id, IngestionStatus::CheckingConsent);
        if let Err(reason) = self.stage_guard(fault_points::CONSENT) {
            return Self::dead_letter_status("consent", reason);
        }
        {
            // All of a bundle's consent changes must land atomically —
            // a reader between grant and revoke would see a half-applied
            // bundle; the loop is bounded by the bundle's resources.
            // hc-lint: allow(lock-held-long)
            let mut consent = self.shared.consent.lock();
            for (study, granted) in &ready.consents {
                let action = if *granted {
                    consent.grant(job.credential.patient, self.shared.study, ConsentScope::FULL);
                    ProvenanceAction::ConsentGranted
                } else {
                    consent.revoke(job.credential.patient, self.shared.study);
                    ProvenanceAction::ConsentRevoked
                };
                // Consent provenance "as required by GDPR and
                // HIPAA" (§IV-A) — anchored before the data is.
                self.anchor(ProvenanceEvent {
                    record: ReferenceId::from_raw(job.id.as_u128()),
                    data_hash: sha256::hash(study.as_bytes()),
                    action,
                    // `credential.patient` is the pseudonymous
                    // PatientId (an opaque 128-bit id), not an
                    // identified Patient record.
                    // hc-lint: allow(phi-fmt-leak, taint-phi-to-sink)
                    actor: format!("device:{}", job.credential.patient),
                    detail: format!("study={study}"),
                });
            }
            if !consent.allows_analytics(job.credential.patient, self.shared.study) {
                drop(consent);
                self.stats.lock().rejected_consent += 1;
                return self.reject(
                    "consent",
                    format!(
                        "patient has not consented to study `{}`",
                        self.shared.study_name
                    ),
                );
            }
        }
        mark(3, &mut stage_start);

        // Anonymization verdict (computed during prepare) reported after
        // the consent check, preserving the serial rejection priority.
        if !ready.violations.is_empty() {
            self.stats.lock().rejected_anonymization += 1;
            return self.reject("anonymization-verification", ready.violations.join("; "));
        }

        // 6. Encrypt at rest under a fresh per-record key and store.
        if let Err(reason) = self.stage_guard(fault_points::STORE) {
            return Self::dead_letter_status("store", reason);
        }
        let ingest = Principal::Service("ingest".into());
        let deid_bytes = ready.deid_bytes;
        let data_hash = ready.data_hash;
        let record_key = {
            let mut rng = self.rng.lock();
            self.shared.kms.create_key(
                &mut *rng,
                &[
                    Principal::Service("ingest".into()),
                    Principal::Service("export".into()),
                ],
            )
        };
        let sealed_at_rest = match self.shared.kms.seal(&ingest, record_key, &deid_bytes, b"at-rest") {
            Ok(s) => s,
            Err(e) => return self.reject("store", e.to_string()),
        };
        let at_rest_bytes = match serde_json::to_vec(&sealed_at_rest) {
            Ok(b) => b,
            Err(e) => return self.reject("store", e.to_string()),
        };
        // Envelope-encryption provenance travels with the stored version:
        // `enc` names the scheme and `dek` the wrapping KMS key, so the
        // posture scanner can verify every PHI record is sealed under a
        // *live* key without touching payload bytes.
        let dek_tag = record_key.as_u128().to_string();
        let reference = {
            let mut rng = self.rng.lock();
            let mut lake = self.shared.lake.lock();
            let reference = lake.put(
                &mut *rng,
                at_rest_bytes,
                &[
                    ("study", self.shared.study_name.as_str()),
                    ("kind", "bundle"),
                    ("enc", "envelope-v1"),
                    ("dek", dek_tag.as_str()),
                ],
            );
            lake.map_identity(reference, job.credential.patient);
            reference
        };
        self.shared.record_keys.lock().insert(reference, record_key);
        self.shared
            .pseudonyms
            .lock()
            .insert(reference, ready.pseudonyms);
        mark(5, &mut stage_start);

        // 7. Anchor provenance. Under a ledger partition these buffer
        // in degraded mode and replay on heal, so a reachable ledger is
        // not a prerequisite for accepting patient data.
        self.anchor(ProvenanceEvent {
            record: reference,
            data_hash,
            action: ProvenanceAction::Ingested,
            actor: "ingest-service".into(),
            detail: format!("study={}", self.shared.study_name),
        });
        self.anchor(ProvenanceEvent {
            record: reference,
            data_hash,
            action: ProvenanceAction::Anonymized,
            actor: "deid-service".into(),
            detail: String::new(),
        });
        mark(6, &mut stage_start);

        self.stats.lock().stored += 1;
        IngestionStatus::Stored {
            references: vec![reference],
        }
    }

    /// Right-to-forget: purges and crypto-shreds every record of a
    /// patient, anchoring `deleted` events.
    ///
    /// Returns the number of records destroyed.
    pub fn forget_patient(&self, patient: PatientId) -> usize {
        let references = self.shared.lake.lock().references_of(patient);
        for &reference in &references {
            {
                let mut lake = self.shared.lake.lock();
                let _ = lake.tombstone(reference);
                let _ = lake.purge(reference);
            }
            if let Some(key) = self.shared.record_keys.lock().remove(&reference) {
                self.shared.kms.shred(key);
            }
            self.shared.pseudonyms.lock().remove(&reference);
            let mut provenance = self.shared.provenance.lock();
            let _ = provenance.record(&ProvenanceEvent {
                record: reference,
                data_hash: sha256::hash(b""),
                action: ProvenanceAction::Deleted,
                actor: "gdpr-service".into(),
                detail: "right-to-forget".into(),
            });
        }
        references.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PipelineStats {
        *self.stats.lock()
    }

    /// Creates the export service sharing this pipeline's state.
    pub fn export_service(&self) -> crate::export::ExportService {
        crate::export::ExportService::new(Arc::clone(&self.shared))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hc_common::clock::SimDuration;
    use hc_fhir::bundle::BundleKind;
    use hc_fhir::resource::{Consent, Gender, Observation, Patient};
    use hc_fhir::types::{CodeableConcept, Quantity, SimDate};
    use hc_ledger::chain::Ledger;
    use hc_ledger::consensus::PbftCluster;
    use hc_ledger::policy::{MalwarePolicy, ProvenancePolicy};

    pub(crate) fn build_pipeline(seed: u64) -> IngestionPipeline {
        let clock = SimClock::new();
        let mut rng = hc_common::rng::seeded(seed);
        let kms = Arc::new(KeyManagementSystem::new(&mut rng));
        let lake = Arc::new(Mutex::new(DataLake::new(clock.clone())));
        let consent = Arc::new(Mutex::new(ConsentRegistry::new(clock.clone())));
        let cluster = PbftCluster::new(4, SimDuration::from_millis(1), clock.clone()).unwrap();
        let mut ledger = Ledger::new(cluster, clock.clone());
        ledger.install_policy(Box::new(ProvenancePolicy));
        ledger.install_policy(Box::new(MalwarePolicy));
        let provenance = Arc::new(Mutex::new(ProvenanceNetwork::new(ledger, clock, 1)));
        IngestionPipeline::new(
            PipelineDeps {
                kms,
                lake,
                consent,
                provenance,
            },
            GroupId::from_raw(1),
            "diabetes-rwe",
            seed,
        )
    }

    fn patient_bundle(with_consent: bool) -> Bundle {
        let mut entries = vec![
            Resource::Patient(
                Patient::builder("p1")
                    .name("Doe", "Jane")
                    .gender(Gender::Female)
                    .birth_year(1970)
                    .phone("555-0100")
                    .build(),
            ),
            Resource::Observation(Observation {
                id: "o1".into(),
                subject: "p1".into(),
                code: CodeableConcept::hba1c(),
                value: Quantity::new(7.1, "%"),
                effective: SimDate(200),
            }),
        ];
        if with_consent {
            entries.push(Resource::Consent(Consent {
                id: "c1".into(),
                subject: "p1".into(),
                study: "diabetes-rwe".into(),
                granted: true,
            }));
        }
        Bundle::new(BundleKind::Transaction, entries)
    }

    #[test]
    fn happy_path_stores_and_anchors_provenance() {
        let pipeline = build_pipeline(1);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        assert_eq!(pipeline.status(url), Some(IngestionStatus::Received));
        assert_eq!(pipeline.process_all(), 1);
        let status = pipeline.status(url).unwrap();
        let IngestionStatus::Stored { references } = status else {
            panic!("expected Stored, got {status:?}");
        };
        assert_eq!(references.len(), 1);
        let provenance = pipeline.shared.provenance.lock();
        let history = provenance.history(references[0]);
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].action, ProvenanceAction::Ingested);
        assert_eq!(history[1].action, ProvenanceAction::Anonymized);
        assert_eq!(pipeline.stats().stored, 1);
    }

    #[test]
    fn tampered_upload_rejected_at_decrypt() {
        let pipeline = build_pipeline(2);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let mut sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        sealed.ciphertext[0] ^= 0xff;
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        let status = pipeline.status(url).unwrap();
        assert!(matches!(status, IngestionStatus::Rejected { ref stage, .. } if stage == "decrypt"));
        assert_eq!(pipeline.stats().rejected_integrity, 1);
    }

    #[test]
    fn invalid_bundle_rejected() {
        let pipeline = build_pipeline(3);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        // Observation with dangling subject (strict validator).
        let bad = Bundle::new(
            BundleKind::Transaction,
            vec![Resource::Observation(Observation {
                id: "o1".into(),
                subject: "ghost".into(),
                code: CodeableConcept::hba1c(),
                value: Quantity::new(7.1, "%"),
                effective: SimDate(1),
            })],
        );
        let sealed = pipeline.seal_upload(&credential, &bad).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        assert!(matches!(
            pipeline.status(url).unwrap(),
            IngestionStatus::Rejected { ref stage, .. } if stage == "validate"
        ));
    }

    #[test]
    fn malware_rejected_and_posted_to_chain() {
        let pipeline = build_pipeline(4);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let mut bundle = patient_bundle(true);
        // Hide the signature inside a field value.
        if let Resource::Patient(p) = &mut bundle.entries[0] {
            p.name = Some(hc_fhir::types::HumanName::new(
                String::from_utf8_lossy(crate::scanner::TEST_SIGNATURE).to_string(),
                "Jane",
            ));
        }
        let sealed = pipeline.seal_upload(&credential, &bundle).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        assert!(matches!(
            pipeline.status(url).unwrap(),
            IngestionStatus::Rejected { ref stage, .. } if stage == "malware-scan"
        ));
        let provenance = pipeline.shared.provenance.lock();
        let malware_txs = provenance.ledger().channel_transactions("malware");
        assert_eq!(malware_txs.len(), 1);
        assert!(String::from_utf8_lossy(&malware_txs[0].payload).contains("scanner="));
    }

    #[test]
    fn missing_consent_rejected() {
        let pipeline = build_pipeline(5);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(false)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        assert!(matches!(
            pipeline.status(url).unwrap(),
            IngestionStatus::Rejected { ref stage, .. } if stage == "consent"
        ));
        assert_eq!(pipeline.stats().rejected_consent, 1);
    }

    #[test]
    fn consent_persists_across_uploads() {
        let pipeline = build_pipeline(6);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        // First upload carries consent; second does not need it.
        let s1 = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let u1 = pipeline.submit(credential, s1);
        pipeline.process_all();
        assert!(pipeline.status(u1).unwrap().is_stored());
        let s2 = pipeline.seal_upload(&credential, &patient_bundle(false)).unwrap();
        let u2 = pipeline.submit(credential, s2);
        pipeline.process_all();
        assert!(pipeline.status(u2).unwrap().is_stored());
    }

    #[test]
    fn stored_record_is_deidentified_and_encrypted() {
        let pipeline = build_pipeline(7);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        let IngestionStatus::Stored { references } = pipeline.status(url).unwrap() else {
            panic!("stored");
        };
        let raw = {
            let mut lake = pipeline.shared.lake.lock();
            lake.get_latest(references[0]).unwrap().data.clone()
        };
        // At-rest bytes are a sealed envelope, not plaintext PHI.
        let as_text = String::from_utf8_lossy(&raw);
        assert!(!as_text.contains("Jane"), "PHI must not be at rest in clear");
        assert!(Bundle::from_bytes(&raw).is_err(), "not a plaintext bundle");
    }

    #[test]
    fn forget_patient_destroys_records() {
        let pipeline = build_pipeline(8);
        let patient = PatientId::from_raw(5);
        let credential = pipeline.register_device(patient);
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        let IngestionStatus::Stored { references } = pipeline.status(url).unwrap() else {
            panic!("stored");
        };
        assert_eq!(pipeline.forget_patient(patient), 1);
        // Record gone from the lake, key shredded, deletion anchored.
        {
            let mut lake = pipeline.shared.lake.lock();
            assert!(lake.get_latest(references[0]).is_err());
        }
        let provenance = pipeline.shared.provenance.lock();
        let history = provenance.history(references[0]);
        assert_eq!(history.last().unwrap().action, ProvenanceAction::Deleted);
    }

    #[test]
    fn parallel_workers_drain_queue() {
        let pipeline = build_pipeline(9);
        let patient = PatientId::from_raw(5);
        let credential = pipeline.register_device(patient);
        for _ in 0..20 {
            let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
            pipeline.submit(credential, sealed);
        }
        let processed = pipeline.process_all_parallel(4);
        assert_eq!(processed, 20);
        assert_eq!(pipeline.stats().stored, 20);
    }

    #[test]
    fn transient_stage_fault_is_retried_to_success() {
        use hc_common::fault::FaultSpec;
        let pipeline = build_pipeline(11);
        let clock = SimClock::new();
        let injector = hc_common::fault::FaultInjector::new(clock.clone(), 11);
        // Two transient hits, well inside the 4-attempt budget.
        injector.schedule(
            fault_points::DECRYPT,
            FaultSpec::always(hc_common::fault::FaultKind::TransientError).limit(2),
        );
        pipeline.enable_resilience(clock, injector, 11);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        assert!(pipeline.status(url).unwrap().is_stored());
        assert_eq!(pipeline.stats().retried, 2);
        assert_eq!(pipeline.stats().dead_lettered, 0);
    }

    #[test]
    fn poison_upload_dead_lettered_and_replayable() {
        let pipeline = build_pipeline(12);
        let clock = SimClock::new();
        let injector = hc_common::fault::FaultInjector::disabled();
        pipeline.enable_resilience(clock, injector, 12);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        // Valid upload + poison (unparseable) upload.
        let good = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let poison = pipeline
            .seal_raw_upload(&credential, b"{not a bundle")
            .unwrap();
        let good_url = pipeline.submit(credential, good);
        let poison_url = pipeline.submit(credential, poison);
        pipeline.process_all();
        assert!(pipeline.status(good_url).unwrap().is_stored());
        assert!(matches!(
            pipeline.status(poison_url).unwrap(),
            IngestionStatus::DeadLettered { ref stage, .. } if stage == "validate"
        ));
        assert_eq!(pipeline.dead_letters().len(), 1);
        // Replay without fixing anything: the poison stays parked.
        let report = pipeline.replay_dead_letters();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.requeued, 1);
        assert_eq!(pipeline.dead_letters().len(), 1);
    }

    #[test]
    fn ledger_partition_buffers_anchors_then_replays() {
        use hc_common::fault::{FaultKind, FaultSpec};
        let pipeline = build_pipeline(13);
        let clock = SimClock::new();
        let injector = hc_common::fault::FaultInjector::new(clock.clone(), 13);
        injector.schedule(
            fault_points::LEDGER_PARTITION,
            FaultSpec::always(FaultKind::NetworkPartition),
        );
        pipeline.enable_resilience(clock, injector.clone(), 13);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        // Data accepted in degraded mode; nothing anchored yet.
        let IngestionStatus::Stored { references } = pipeline.status(url).unwrap() else {
            panic!("stored despite partition");
        };
        assert!(pipeline.is_degraded());
        // consent + ingested + anonymized
        assert_eq!(pipeline.buffered_anchor_count(), 3);
        assert!(pipeline.shared.provenance.lock().history(references[0]).is_empty());
        // Heal and replay: zero provenance loss.
        injector.heal(fault_points::LEDGER_PARTITION);
        assert_eq!(pipeline.replay_buffered_anchors(), 3);
        assert!(!pipeline.is_degraded());
        let history = pipeline.shared.provenance.lock().history(references[0]);
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].action, ProvenanceAction::Ingested);
        assert_eq!(history[1].action, ProvenanceAction::Anonymized);
    }

    #[test]
    fn foreign_device_cannot_use_anothers_key() {
        let pipeline = build_pipeline(10);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        // A different patient's device tries to seal with this key.
        let thief = DeviceCredential {
            patient: PatientId::from_raw(6),
            key: credential.key,
        };
        assert!(pipeline.seal_upload(&thief, &patient_bundle(true)).is_err());
    }
}
