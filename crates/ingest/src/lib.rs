//! The asynchronous data ingestion and export pipeline (§II-B).
//!
//! The paper's flow, reproduced stage for stage: "Encrypted data, using a
//! client's public certificate issued by the platform, is uploaded to a
//! secure temporary storage area, and a message is left in the platform's
//! internal messaging system for the background ingestion process … The
//! platform returns a status URL to the uploading client … The background
//! data-ingestion process picks the encrypted data from the staging area
//! and performs the following three steps under Ingestion: i) Decrypts
//! data using the client's private key … ii) Validates the uploaded bundle
//! for errors. iii) After successful validation, the data is de-identified
//! and stored in the backend storage system (Data Lake) with a
//! reference-id". Plus §IV-B1's checks: integrity/authenticity
//! verification, malware scanning, anonymization verification and patient
//! consent — each failure rejects the upload and (for malware) posts to
//! the malware blockchain channel.
//!
//! * [`scanner`] — the signature-based malware data-filtration service.
//! * [`status`] — the status-URL state machine clients poll.
//! * [`pipeline`] — the staged background ingestion process itself,
//!   runnable inline or on worker threads.
//! * [`export`] — the export service: anonymized export and consented,
//!   re-identified full export (for CROs).

#![forbid(unsafe_code)]

pub mod export;
pub mod pipeline;
pub mod scanner;
pub mod status;
