//! Determinism regression for the parallel ingest worker pool.
//!
//! The sequence-numbered merge in
//! `IngestionPipeline::process_all_parallel` promises that the worker
//! count is unobservable: same seed and same submissions must produce a
//! byte-identical anonymized export, identical per-upload terminal
//! statuses and identical [`PipelineStats`] for workers ∈ {1, 2, 8} and
//! for the serial path. The soak seed can be overridden with
//! `HC_SOAK_SEED` so CI can rotate seeds without a code change.

use std::sync::Arc;

use parking_lot::Mutex;

use hc_access::consent::ConsentRegistry;
use hc_common::clock::{SimClock, SimDuration};
use hc_common::fault::{FaultInjector, FaultKind, FaultSpec};
use hc_common::id::{GroupId, PatientId};
use hc_crypto::kms::KeyManagementSystem;
use hc_fhir::bundle::{Bundle, BundleKind};
use hc_fhir::resource::{Consent, Gender, Observation, Patient, Resource};
use hc_fhir::types::{CodeableConcept, Quantity, SimDate};
use hc_ingest::pipeline::{IngestionPipeline, PipelineDeps, PipelineStats};
use hc_ledger::chain::Ledger;
use hc_ledger::consensus::PbftCluster;
use hc_ledger::policy::{MalwarePolicy, ProvenancePolicy};
use hc_ledger::provenance::ProvenanceNetwork;
use hc_storage::datalake::DataLake;

fn soak_seed() -> u64 {
    std::env::var("HC_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD17E)
}

fn build_pipeline(seed: u64) -> IngestionPipeline {
    let clock = SimClock::new();
    let mut rng = hc_common::rng::seeded(seed);
    let kms = Arc::new(KeyManagementSystem::new(&mut rng));
    let lake = Arc::new(Mutex::new(DataLake::new(clock.clone())));
    let consent = Arc::new(Mutex::new(ConsentRegistry::new(clock.clone())));
    let cluster = PbftCluster::new(4, SimDuration::from_millis(1), clock.clone()).unwrap();
    let mut ledger = Ledger::new(cluster, clock.clone());
    ledger.install_policy(Box::new(ProvenancePolicy));
    ledger.install_policy(Box::new(MalwarePolicy));
    let provenance = Arc::new(Mutex::new(ProvenanceNetwork::new(ledger, clock, 1)));
    IngestionPipeline::new(
        PipelineDeps {
            kms,
            lake,
            consent,
            provenance,
        },
        GroupId::from_raw(1),
        "diabetes-rwe",
        seed,
    )
}

/// A per-upload bundle whose clinical content varies with `i`, so the
/// export comparison is sensitive to record order and completeness.
fn upload_bundle(i: u64, with_consent: bool) -> Bundle {
    let mut entries = vec![
        Resource::Patient(
            Patient::builder("p1")
                .name("Doe", "Jane")
                .gender(Gender::Female)
                .birth_year(1950 + (i % 40) as u32)
                .phone("555-0100")
                .build(),
        ),
        Resource::Observation(Observation {
            id: "o1".into(),
            subject: "p1".into(),
            code: CodeableConcept::hba1c(),
            value: Quantity::new(5.0 + (i as f64) * 0.25, "%"),
            effective: SimDate(100 + i as u32),
        }),
    ];
    if with_consent {
        entries.push(Resource::Consent(Consent {
            id: "c1".into(),
            subject: "p1".into(),
            study: "diabetes-rwe".into(),
            granted: true,
        }));
    }
    Bundle::new(BundleKind::Transaction, entries)
}

/// Runs the canonical workload: 24 uploads, one in five missing
/// consent. `workers == 0` means the serial `process_all` path.
fn run_workload(seed: u64, workers: usize) -> (Vec<u8>, PipelineStats, Vec<String>) {
    let pipeline = build_pipeline(seed);
    let mut urls = Vec::new();
    for i in 0..24u64 {
        let credential = pipeline.register_device(PatientId::from_raw(100 + u128::from(i)));
        let bundle = upload_bundle(i, i % 5 != 3);
        let sealed = pipeline.seal_upload(&credential, &bundle).unwrap();
        urls.push(pipeline.submit(credential, sealed));
    }
    let processed = if workers == 0 {
        pipeline.process_all()
    } else {
        pipeline.process_all_parallel(workers)
    };
    assert_eq!(processed, 24, "every upload must be processed");
    let statuses = urls
        .iter()
        .map(|&url| format!("{:?}", pipeline.status(url).unwrap()))
        .collect();
    let export = pipeline
        .export_service()
        .export_anonymized()
        .expect("export must succeed");
    (export.to_bytes(), pipeline.stats(), statuses)
}

#[test]
fn parallel_ingest_is_deterministic_across_worker_counts() {
    let seed = soak_seed();
    let (baseline_bytes, baseline_stats, baseline_statuses) = run_workload(seed, 0);
    assert_eq!(baseline_stats.stored, 19, "24 uploads minus 5 unconsented");
    assert_eq!(baseline_stats.rejected_consent, 5);
    for workers in [1, 2, 8] {
        let (bytes, stats, statuses) = run_workload(seed, workers);
        assert_eq!(
            bytes, baseline_bytes,
            "export must be byte-identical with {workers} workers"
        );
        assert_eq!(
            stats, baseline_stats,
            "stats must be identical with {workers} workers"
        );
        assert_eq!(
            statuses, baseline_statuses,
            "per-upload statuses must be identical with {workers} workers"
        );
    }
}

#[test]
fn worker_pool_drains_under_injected_fault() {
    let seed = soak_seed().wrapping_add(1);
    let pipeline = build_pipeline(seed);
    let clock = SimClock::new();
    let injector = FaultInjector::new(clock.clone(), seed);
    // Four transient hits on the (ordered, single-threaded) store stage:
    // the first upload to commit exhausts the 4-attempt retry budget and
    // dead-letters; every later upload sees a healed stage.
    injector.schedule(
        "ingest.store",
        FaultSpec::always(FaultKind::TransientError).limit(4),
    );
    pipeline.enable_resilience(clock, injector, seed);
    let credential = pipeline.register_device(PatientId::from_raw(7));
    let mut urls = Vec::new();
    for i in 0..8u64 {
        let sealed = pipeline
            .seal_upload(&credential, &upload_bundle(i, true))
            .unwrap();
        urls.push(pipeline.submit(credential, sealed));
    }
    // A poison upload that dead-letters at validation, from a worker.
    let poison = pipeline
        .seal_raw_upload(&credential, b"{not a bundle")
        .unwrap();
    let poison_url = pipeline.submit(credential, poison);

    let processed = pipeline.process_all_parallel(4);
    assert_eq!(processed, 9, "the pool must drain despite faults");
    let stats = pipeline.stats();
    assert_eq!(stats.stored, 7, "uploads 2..8 store normally");
    assert_eq!(stats.dead_lettered, 2, "store-fault upload + poison");
    assert_eq!(stats.retried, 3, "three backoff retries before giving up");
    assert_eq!(pipeline.dead_letters().len(), 2);
    assert!(
        matches!(
            pipeline.status(urls[0]).unwrap(),
            hc_ingest::status::IngestionStatus::DeadLettered { ref stage, .. } if stage == "store"
        ),
        "first-committed upload dead-letters at store"
    );
    assert!(matches!(
        pipeline.status(poison_url).unwrap(),
        hc_ingest::status::IngestionStatus::DeadLettered { ref stage, .. } if stage == "validate"
    ));
}
