//! The network model: latency and bandwidth by link class.
//!
//! Calibrated to the measurements the paper cites ([1–3]): local access
//! is microseconds, intra-datacenter round trips are fractions of a
//! millisecond, and remote-cloud access is tens of milliseconds — "orders
//! of magnitude higher".

use hc_common::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// A place in the topology: `(region, host)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Location {
    /// Region (cloud/datacenter) index.
    pub region: usize,
    /// Host index within the region.
    pub host: usize,
}

impl Location {
    /// Creates a location.
    pub const fn new(region: usize, host: usize) -> Self {
        Location { region, host }
    }
}

/// Link classification between two locations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkClass {
    /// Same host (loopback / memory).
    Local,
    /// Same region, different hosts.
    IntraRegion,
    /// Different regions (intercloud WAN).
    InterRegion,
}

/// Latency + bandwidth per link class.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way latency on the local link.
    pub local_latency: SimDuration,
    /// One-way latency within a region.
    pub intra_latency: SimDuration,
    /// One-way latency between regions.
    pub inter_latency: SimDuration,
    /// Local "bandwidth" (memory-speed) in bytes/second.
    pub local_bw: u64,
    /// Intra-region bandwidth in bytes/second.
    pub intra_bw: u64,
    /// Inter-region bandwidth in bytes/second.
    pub inter_bw: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            local_latency: SimDuration::from_micros(2),
            intra_latency: SimDuration::from_micros(500),
            inter_latency: SimDuration::from_millis(50),
            local_bw: 10_000_000_000,  // 10 GB/s
            intra_bw: 1_250_000_000,   // 10 Gbit/s
            inter_bw: 125_000_000,     // 1 Gbit/s
        }
    }
}

impl NetworkModel {
    /// Classifies the link between two locations.
    pub fn classify(&self, a: Location, b: Location) -> LinkClass {
        if a.region != b.region {
            LinkClass::InterRegion
        } else if a.host != b.host {
            LinkClass::IntraRegion
        } else {
            LinkClass::Local
        }
    }

    /// One-way latency between two locations.
    pub fn latency(&self, a: Location, b: Location) -> SimDuration {
        match self.classify(a, b) {
            LinkClass::Local => self.local_latency,
            LinkClass::IntraRegion => self.intra_latency,
            LinkClass::InterRegion => self.inter_latency,
        }
    }

    /// Time to move `bytes` from `a` to `b`: latency + serialization.
    pub fn transfer_time(&self, a: Location, b: Location, bytes: u64) -> SimDuration {
        let bw = match self.classify(a, b) {
            LinkClass::Local => self.local_bw,
            LinkClass::IntraRegion => self.intra_bw,
            LinkClass::InterRegion => self.inter_bw,
        };
        let ser_nanos = (bytes as u128 * 1_000_000_000u128 / bw as u128) as u64;
        self.latency(a, b) + SimDuration::from_nanos(ser_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let m = NetworkModel::default();
        let a = Location::new(0, 0);
        assert_eq!(m.classify(a, Location::new(0, 0)), LinkClass::Local);
        assert_eq!(m.classify(a, Location::new(0, 1)), LinkClass::IntraRegion);
        assert_eq!(m.classify(a, Location::new(1, 0)), LinkClass::InterRegion);
    }

    #[test]
    fn latency_orders_of_magnitude() {
        let m = NetworkModel::default();
        let local = m.latency(Location::new(0, 0), Location::new(0, 0));
        let remote = m.latency(Location::new(0, 0), Location::new(1, 0));
        assert!(remote.as_nanos() > 1000 * local.as_nanos());
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetworkModel::default();
        let a = Location::new(0, 0);
        let b = Location::new(1, 0);
        let small = m.transfer_time(a, b, 1_000);
        let large = m.transfer_time(a, b, 1_000_000_000);
        assert!(large.as_millis() > small.as_millis() + 1000);
        // 1 GB over 1 Gbit/s ≈ 8 s.
        assert!((7_500..9_000).contains(&large.as_millis()), "{}", large.as_millis());
    }

    #[test]
    fn zero_bytes_is_pure_latency() {
        let m = NetworkModel::default();
        let a = Location::new(0, 0);
        let b = Location::new(0, 1);
        assert_eq!(m.transfer_time(a, b, 0), m.intra_latency);
    }
}
