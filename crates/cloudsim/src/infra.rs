//! Regions, hosts, VMs, containers and provisioning.
//!
//! §II-A: "the IaaS cloud's stack includes i) bare-metal hardware, ii)
//! host operating system/hypervisor iii) Image and hypervisor management
//! and monitoring services." Hosts carry finite CPU capacity; the
//! resource-provisioning service places VMs first-fit; containers deploy
//! onto VMs only when their image verifies and (for trusted pools) an
//! attestation verdict is presented.

// BTreeMap, not HashMap: `crash_host` iterates these maps to collect
// casualties, and the DES must replay identically run-to-run
// (hc-lint: det-unordered-map).
use std::collections::BTreeMap;

use hc_common::id::{ContainerId, HostId, ImageId, VmId};

use crate::net::Location;

/// A physical host.
#[derive(Clone, Debug)]
pub struct Host {
    /// Host id.
    pub id: HostId,
    /// Where it sits.
    pub location: Location,
    /// Compute capacity in FLOP/s.
    pub flops: u64,
    /// CPU cores available.
    pub cores: u32,
    /// Cores currently allocated to VMs.
    pub cores_used: u32,
    /// Whether the host is up (crashed hosts take no placements).
    pub up: bool,
}

/// What a host crash took down with it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CrashReport {
    /// VMs killed by the crash.
    pub vms_lost: usize,
    /// Containers killed (they die with their VMs).
    pub containers_lost: usize,
}

/// A provisioned VM.
#[derive(Clone, Debug)]
pub struct Vm {
    /// VM id.
    pub id: VmId,
    /// The host it runs on.
    pub host: HostId,
    /// Cores allocated.
    pub cores: u32,
}

/// A deployed container.
#[derive(Clone, Debug)]
pub struct Container {
    /// Container id.
    pub id: ContainerId,
    /// The VM it runs in.
    pub vm: VmId,
    /// The (verified) image it runs.
    pub image: ImageId,
    /// Whether it passed attestation on start.
    pub attested: bool,
}

/// Errors from provisioning.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InfraError {
    /// No host in the region has enough free cores.
    NoCapacity {
        /// The requested region.
        region: usize,
        /// Cores requested.
        cores: u32,
    },
    /// Referenced entity does not exist.
    UnknownVm(VmId),
    /// Container deployment rejected: image unverified or attestation
    /// failed.
    Untrusted {
        /// The reason given by the verifier.
        reason: String,
    },
}

impl std::fmt::Display for InfraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfraError::NoCapacity { region, cores } => {
                write!(f, "region {region} has no host with {cores} free cores")
            }
            InfraError::UnknownVm(v) => write!(f, "unknown VM {v}"),
            InfraError::Untrusted { reason } => write!(f, "deployment rejected: {reason}"),
        }
    }
}

impl std::error::Error for InfraError {}

/// The infrastructure cloud.
#[derive(Debug, Default)]
pub struct InfraCloud {
    hosts: Vec<Host>,
    vms: BTreeMap<VmId, Vm>,
    containers: BTreeMap<ContainerId, Container>,
    next_raw: u128,
}

impl InfraCloud {
    /// Creates an empty cloud.
    pub fn new() -> Self {
        InfraCloud::default()
    }

    /// Adds a host with `cores` cores at `flops` FLOP/s in `region`.
    pub fn add_host(&mut self, region: usize, cores: u32, flops: u64) -> HostId {
        self.next_raw += 1;
        let id = HostId::from_raw(self.next_raw);
        let host_index = self.hosts.iter().filter(|h| h.location.region == region).count();
        self.hosts.push(Host {
            id,
            location: Location::new(region, host_index),
            flops,
            cores,
            cores_used: 0,
            up: true,
        });
        id
    }

    /// Crashes a host: everything placed on it dies, and it accepts no
    /// further placements until [`restore_host`](Self::restore_host).
    /// Unknown hosts report an empty crash.
    pub fn crash_host(&mut self, host: HostId) -> CrashReport {
        let mut report = CrashReport::default();
        let Some(entry) = self.hosts.iter_mut().find(|h| h.id == host) else {
            return report;
        };
        entry.up = false;
        entry.cores_used = 0;
        let dead_vms: Vec<VmId> = self
            .vms
            .values()
            .filter(|vm| vm.host == host)
            .map(|vm| vm.id)
            .collect();
        report.vms_lost = dead_vms.len();
        for vm in &dead_vms {
            self.vms.remove(vm);
        }
        let before = self.containers.len();
        self.containers.retain(|_, c| !dead_vms.contains(&c.vm));
        report.containers_lost = before - self.containers.len();
        report
    }

    /// Brings a crashed host back (empty: its workloads died with it).
    pub fn restore_host(&mut self, host: HostId) {
        if let Some(entry) = self.hosts.iter_mut().find(|h| h.id == host) {
            entry.up = true;
        }
    }

    /// Whether a host is up; `None` for unknown hosts.
    pub fn host_is_up(&self, host: HostId) -> Option<bool> {
        self.hosts.iter().find(|h| h.id == host).map(|h| h.up)
    }

    /// Ids of the hosts in a region.
    pub fn hosts_in_region(&self, region: usize) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.location.region == region)
            .map(|h| h.id)
            .collect()
    }

    /// Provisions a VM with `cores` cores in `region`, first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`InfraError::NoCapacity`] when no host fits.
    pub fn provision_vm(&mut self, region: usize, cores: u32) -> Result<VmId, InfraError> {
        let host = self
            .hosts
            .iter_mut()
            .find(|h| h.up && h.location.region == region && h.cores - h.cores_used >= cores)
            .ok_or(InfraError::NoCapacity { region, cores })?;
        host.cores_used += cores;
        let host_id = host.id;
        self.next_raw += 1;
        let id = VmId::from_raw(self.next_raw);
        self.vms.insert(
            id,
            Vm {
                id,
                host: host_id,
                cores,
            },
        );
        Ok(id)
    }

    /// Releases a VM's cores back to its host.
    ///
    /// # Errors
    ///
    /// Fails for an unknown VM.
    pub fn release_vm(&mut self, vm: VmId) -> Result<(), InfraError> {
        let record = self.vms.remove(&vm).ok_or(InfraError::UnknownVm(vm))?;
        if let Some(host) = self.hosts.iter_mut().find(|h| h.id == record.host) {
            host.cores_used -= record.cores;
        }
        // Containers on this VM die with it.
        self.containers.retain(|_, c| c.vm != vm);
        Ok(())
    }

    /// Deploys a container onto a VM. `trust_verdict` is the image +
    /// attestation check result supplied by the platform's trusted
    /// services: `Ok(attested)` to admit, `Err(reason)` to reject.
    ///
    /// # Errors
    ///
    /// Fails for an unknown VM or a rejecting verdict.
    pub fn deploy_container(
        &mut self,
        vm: VmId,
        image: ImageId,
        trust_verdict: Result<bool, String>,
    ) -> Result<ContainerId, InfraError> {
        if !self.vms.contains_key(&vm) {
            return Err(InfraError::UnknownVm(vm));
        }
        let attested = trust_verdict.map_err(|reason| InfraError::Untrusted { reason })?;
        self.next_raw += 1;
        let id = ContainerId::from_raw(self.next_raw);
        self.containers.insert(
            id,
            Container {
                id,
                vm,
                image,
                attested,
            },
        );
        Ok(id)
    }

    /// The location of a VM.
    pub fn vm_location(&self, vm: VmId) -> Option<Location> {
        let record = self.vms.get(&vm)?;
        self.hosts
            .iter()
            .find(|h| h.id == record.host)
            .map(|h| h.location)
    }

    /// The compute capacity backing a VM (its host's FLOP/s scaled by its
    /// core share).
    pub fn vm_flops(&self, vm: VmId) -> Option<u64> {
        let record = self.vms.get(&vm)?;
        let host = self.hosts.iter().find(|h| h.id == record.host)?;
        Some(host.flops * u64::from(record.cores) / u64::from(host.cores.max(1)))
    }

    /// Containers currently running.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Total and used cores across the *live* hosts of a region.
    pub fn region_utilization(&self, region: usize) -> (u32, u32) {
        self.hosts
            .iter()
            .filter(|h| h.up && h.location.region == region)
            .fold((0, 0), |(t, u), h| (t + h.cores, u + h.cores_used))
    }

    /// Number of live VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Every live container, in id order (BTreeMap iteration) — the posture
    /// scanner's walk over running workloads.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Every live VM, in id order.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.values()
    }

    /// A VM by id.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// A host by id.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.iter().find(|h| h.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> InfraCloud {
        let mut c = InfraCloud::new();
        c.add_host(0, 16, 10_000_000_000);
        c.add_host(0, 8, 5_000_000_000);
        c.add_host(1, 32, 20_000_000_000);
        c
    }

    #[test]
    fn first_fit_provisioning() {
        let mut c = cloud();
        let vm1 = c.provision_vm(0, 12).unwrap();
        let vm2 = c.provision_vm(0, 8).unwrap(); // must go to second host
        assert_ne!(
            c.vm_location(vm1).unwrap().host,
            c.vm_location(vm2).unwrap().host
        );
        assert_eq!(c.region_utilization(0), (24, 20));
    }

    #[test]
    fn capacity_exhaustion_errors() {
        let mut c = cloud();
        let _ = c.provision_vm(0, 16).unwrap();
        let _ = c.provision_vm(0, 8).unwrap();
        assert_eq!(
            c.provision_vm(0, 4).unwrap_err(),
            InfraError::NoCapacity { region: 0, cores: 4 }
        );
    }

    #[test]
    fn release_returns_capacity_and_kills_containers() {
        let mut c = cloud();
        let vm = c.provision_vm(0, 16).unwrap();
        let container = c
            .deploy_container(vm, ImageId::from_raw(1), Ok(true))
            .unwrap();
        c.release_vm(vm).unwrap();
        assert_eq!(c.region_utilization(0).1, 0);
        assert!(c.container(container).is_none());
        assert!(c.provision_vm(0, 16).is_ok());
    }

    #[test]
    fn untrusted_deployment_rejected() {
        let mut c = cloud();
        let vm = c.provision_vm(0, 4).unwrap();
        let err = c
            .deploy_container(vm, ImageId::from_raw(1), Err("PCR mismatch".into()))
            .unwrap_err();
        assert_eq!(
            err,
            InfraError::Untrusted {
                reason: "PCR mismatch".into()
            }
        );
    }

    #[test]
    fn vm_flops_scales_with_cores() {
        let mut c = cloud();
        let vm = c.provision_vm(0, 8).unwrap(); // half of the 16-core host
        assert_eq!(c.vm_flops(vm), Some(5_000_000_000));
    }

    #[test]
    fn host_crash_kills_workloads_and_blocks_placement() {
        let mut c = InfraCloud::new();
        let host = c.add_host(0, 16, 10_000_000_000);
        let vm = c.provision_vm(0, 8).unwrap();
        let container = c
            .deploy_container(vm, ImageId::from_raw(1), Ok(true))
            .unwrap();
        let report = c.crash_host(host);
        assert_eq!(
            report,
            CrashReport {
                vms_lost: 1,
                containers_lost: 1
            }
        );
        assert_eq!(c.host_is_up(host), Some(false));
        assert!(c.container(container).is_none());
        assert_eq!(c.vm_count(), 0);
        assert!(
            c.provision_vm(0, 1).is_err(),
            "crashed host takes no placements"
        );
        assert_eq!(c.region_utilization(0), (0, 0));
        // Recovery: the host comes back empty and usable.
        c.restore_host(host);
        assert_eq!(c.host_is_up(host), Some(true));
        assert!(c.provision_vm(0, 16).is_ok());
    }

    #[test]
    fn unknown_vm_errors() {
        let mut c = cloud();
        let bogus = VmId::from_raw(99);
        assert_eq!(c.release_vm(bogus), Err(InfraError::UnknownVm(bogus)));
        assert!(c
            .deploy_container(bogus, ImageId::from_raw(1), Ok(true))
            .is_err());
    }
}
