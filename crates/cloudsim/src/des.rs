//! A minimal discrete-event scheduler.
//!
//! Events are opaque labels scheduled at absolute simulated instants; the
//! queue pops them in time order (FIFO among ties) and advances the shared
//! [`SimClock`] to each event's timestamp as it fires.

use std::collections::BinaryHeap;

use hc_common::clock::{SimClock, SimDuration, SimInstant};

#[derive(Debug)]
struct Scheduled<E> {
    at: SimInstant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; earlier time (then lower seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue over events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    clock: SimClock,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates a queue driving `clock`.
    pub fn new(clock: SimClock) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            clock,
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimInstant, event: E) {
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
    }

    /// Schedules `event` after `delay` from the current clock time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let at = self.clock.now().saturating_add(delay);
        self.schedule_at(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimInstant, E)> {
        let next = self.heap.pop()?;
        self.clock.advance_to(next.at);
        Some((next.at, next.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains all events in time order, applying `handler`.
    pub fn run(&mut self, mut handler: impl FnMut(SimInstant, E)) {
        while let Some((at, e)) = self.pop() {
            handler(at, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let clock = SimClock::new();
        let mut q = EventQueue::new(clock);
        q.schedule_at(SimInstant::from_nanos(30), "c");
        q.schedule_at(SimInstant::from_nanos(10), "a");
        q.schedule_at(SimInstant::from_nanos(20), "b");
        let mut seen = Vec::new();
        q.run(|_, e| seen.push(e));
        assert_eq!(seen, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let clock = SimClock::new();
        let mut q = EventQueue::new(clock);
        q.schedule_at(SimInstant::from_nanos(5), 1);
        q.schedule_at(SimInstant::from_nanos(5), 2);
        q.schedule_at(SimInstant::from_nanos(5), 3);
        let mut seen = Vec::new();
        q.run(|_, e| seen.push(e));
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_to_event_times() {
        let clock = SimClock::new();
        let mut q = EventQueue::new(clock.clone());
        q.schedule_after(SimDuration::from_millis(5), ());
        let (at, _) = q.pop().unwrap();
        assert_eq!(at.as_millis(), 5);
        assert_eq!(clock.now().as_millis(), 5);
    }

    #[test]
    fn schedule_during_run_via_two_phases() {
        let clock = SimClock::new();
        let mut q = EventQueue::new(clock);
        q.schedule_at(SimInstant::from_nanos(1), "first");
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        // Scheduling after a pop starts from the advanced clock.
        q.schedule_after(SimDuration::from_nanos(1), "second");
        let (at, _) = q.pop().unwrap();
        assert_eq!(at.as_nanos(), 2);
    }
}
