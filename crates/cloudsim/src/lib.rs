//! The infrastructure-cloud simulator (paper §II, Fig. 1).
//!
//! Models the IaaS substrate the health cloud platform runs on: regions
//! connected by a latency/bandwidth network model, hosts with finite
//! capacity, VMs provisioned onto hosts, containers deployed onto VMs
//! (gated on image verification and attestation), analytics workloads
//! with compute and data-transfer costs, and the **intercloud secure
//! gateway** of §II-C, which ships trusted analytics containers to the
//! data instead of shipping data to the compute — "thereby making it very
//! efficient and secured" (quantified by E12).
//!
//! * [`des`] — a minimal discrete-event scheduler used to sequence
//!   simulated activities.
//! * [`net`] — the network model: per-link-class latency and bandwidth.
//! * [`infra`] — regions, hosts, VMs, containers and first-fit
//!   provisioning.
//! * [`workload`] — analytics workload cost model.
//! * [`gateway`] — the intercloud secure gateway and the
//!   ship-data-vs-ship-compute comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod gateway;
pub mod infra;
pub mod net;
pub mod workload;
