//! The intercloud secure gateway (§II-C).
//!
//! "Many times the cloud designed to scale for data collection and
//! authoring is not well equipped with other services … Our design of
//! extending the root of trust to the level of containers allows transfer
//! of trusted analytic workloads (packaged in containers) across different
//! cloud instances … This allows the computation to be transferred to data
//! instead of otherwise, thereby making it very efficient and secured. The
//! intercloud secure gateway … also offers a service of Remote Attestation
//! for the platform to attest when the analytics workload is started."
//!
//! [`IntercloudGateway::ship_compute`] moves a signed container image to
//! the data's cloud and attests it on arrival;
//! [`IntercloudGateway::ship_data`] is the baseline that hauls the dataset
//! to the analytics cloud. E12 compares bytes moved and makespan.

use hc_common::clock::{SimClock, SimDuration};

use crate::net::{Location, NetworkModel};

/// The plan comparison result for one intercloud execution.
#[derive(Clone, Copy, Debug)]
pub struct IntercloudReport {
    /// Bytes that crossed the inter-cloud link.
    pub bytes_moved: u64,
    /// Transfer time.
    pub transfer: SimDuration,
    /// Attestation overhead (zero for ship-data, which runs in the
    /// already-trusted analytics cloud).
    pub attestation: SimDuration,
    /// Compute time at the execution site.
    pub compute: SimDuration,
    /// Whether the remote workload was attested before starting.
    pub attested: bool,
}

impl IntercloudReport {
    /// End-to-end makespan.
    pub fn makespan(&self) -> SimDuration {
        self.transfer + self.attestation + self.compute
    }
}

/// Errors from gateway operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GatewayError {
    /// The destination refused the workload: attestation failed.
    AttestationFailed {
        /// The verifier's reason.
        reason: String,
    },
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::AttestationFailed { reason } => {
                write!(f, "remote attestation failed: {reason}")
            }
        }
    }
}

impl std::error::Error for GatewayError {}

/// The gateway between a data cloud and an analytics cloud.
#[derive(Debug)]
pub struct IntercloudGateway {
    clock: SimClock,
    net: NetworkModel,
    /// Where the (large) dataset lives.
    pub data_site: Location,
    /// Where the analytics stack (and container registry) lives.
    pub compute_site: Location,
    /// Fixed attestation round-trip charged when a shipped container
    /// starts remotely (quote + verification).
    pub attestation_cost: SimDuration,
}

impl IntercloudGateway {
    /// Creates a gateway over the default network model.
    pub fn new(clock: SimClock, data_site: Location, compute_site: Location) -> Self {
        IntercloudGateway {
            clock,
            net: NetworkModel::default(),
            data_site,
            compute_site,
            attestation_cost: SimDuration::from_millis(120),
        }
    }

    /// Overrides the network model.
    #[must_use]
    pub fn with_network(mut self, net: NetworkModel) -> Self {
        self.net = net;
        self
    }

    /// Baseline: ship the dataset to the analytics cloud and compute
    /// there. No attestation needed (workload never leaves its trusted
    /// home), but the whole dataset crosses the WAN.
    pub fn ship_data(
        &self,
        dataset_bytes: u64,
        compute: SimDuration,
    ) -> IntercloudReport {
        let transfer = self
            .net
            .transfer_time(self.data_site, self.compute_site, dataset_bytes);
        let report = IntercloudReport {
            bytes_moved: dataset_bytes,
            transfer,
            attestation: SimDuration::ZERO,
            compute,
            attested: false,
        };
        self.clock.advance(report.makespan());
        report
    }

    /// The paper's design: ship the (much smaller) trusted container to
    /// the data, attest it on arrival, and compute in place.
    ///
    /// # Errors
    ///
    /// Fails when `attestation_verdict` rejects — the workload is never
    /// started (the gateway still charges the transfer + attestation time
    /// spent discovering that).
    pub fn ship_compute(
        &self,
        container_bytes: u64,
        compute: SimDuration,
        attestation_verdict: Result<(), String>,
    ) -> Result<IntercloudReport, GatewayError> {
        let transfer = self
            .net
            .transfer_time(self.compute_site, self.data_site, container_bytes);
        match attestation_verdict {
            Ok(()) => {
                let report = IntercloudReport {
                    bytes_moved: container_bytes,
                    transfer,
                    attestation: self.attestation_cost,
                    compute,
                    attested: true,
                };
                self.clock.advance(report.makespan());
                Ok(report)
            }
            Err(reason) => {
                self.clock.advance(transfer + self.attestation_cost);
                Err(GatewayError::AttestationFailed { reason })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gateway() -> IntercloudGateway {
        IntercloudGateway::new(SimClock::new(), Location::new(0, 0), Location::new(1, 0))
    }

    const GB: u64 = 1_000_000_000;
    const MB: u64 = 1_000_000;

    #[test]
    fn ship_compute_moves_fewer_bytes_and_finishes_faster() {
        let g = gateway();
        let compute = SimDuration::from_secs(5);
        let data_plan = g.ship_data(10 * GB, compute);
        let compute_plan = g.ship_compute(200 * MB, compute, Ok(())).unwrap();
        assert!(compute_plan.bytes_moved < data_plan.bytes_moved / 10);
        assert!(compute_plan.makespan() < data_plan.makespan());
        assert!(compute_plan.attested);
    }

    #[test]
    fn attestation_overhead_charged() {
        let g = gateway();
        let report = g
            .ship_compute(MB, SimDuration::from_secs(1), Ok(()))
            .unwrap();
        assert_eq!(report.attestation, SimDuration::from_millis(120));
    }

    #[test]
    fn failed_attestation_blocks_execution() {
        let g = gateway();
        let before = g.clock.now();
        let err = g
            .ship_compute(MB, SimDuration::from_secs(1), Err("PCR mismatch".into()))
            .unwrap_err();
        assert_eq!(
            err,
            GatewayError::AttestationFailed {
                reason: "PCR mismatch".into()
            }
        );
        // Time was still spent discovering the failure, but no compute ran.
        let elapsed = g.clock.now().duration_since(before);
        assert!(elapsed >= SimDuration::from_millis(120));
        assert!(elapsed < SimDuration::from_secs(1));
    }

    #[test]
    fn tiny_datasets_favor_ship_data() {
        // Crossover: when the dataset is smaller than the container, the
        // baseline wins — the bench sweeps this.
        let g = gateway();
        let compute = SimDuration::from_millis(10);
        let data_plan = g.ship_data(MB, compute);
        let compute_plan = g.ship_compute(200 * MB, compute, Ok(())).unwrap();
        assert!(data_plan.makespan() < compute_plan.makespan());
    }

    #[test]
    fn clock_advances_by_makespan() {
        let clock = SimClock::new();
        let g = IntercloudGateway::new(clock.clone(), Location::new(0, 0), Location::new(1, 0));
        let report = g.ship_data(GB, SimDuration::from_secs(1));
        assert_eq!(clock.now().as_nanos(), report.makespan().as_nanos());
    }
}
