//! The intercloud secure gateway (§II-C).
//!
//! "Many times the cloud designed to scale for data collection and
//! authoring is not well equipped with other services … Our design of
//! extending the root of trust to the level of containers allows transfer
//! of trusted analytic workloads (packaged in containers) across different
//! cloud instances … This allows the computation to be transferred to data
//! instead of otherwise, thereby making it very efficient and secured. The
//! intercloud secure gateway … also offers a service of Remote Attestation
//! for the platform to attest when the analytics workload is started."
//!
//! [`IntercloudGateway::ship_compute`] moves a signed container image to
//! the data's cloud and attests it on arrival;
//! [`IntercloudGateway::ship_data`] is the baseline that hauls the dataset
//! to the analytics cloud. E12 compares bytes moved and makespan.

use hc_common::clock::{SimClock, SimDuration};
use hc_common::fault::FaultInjector;
use hc_telemetry::{Counter, Histogram, Registry};
use parking_lot::Mutex;
use rand::rngs::StdRng;

use hc_resilience::RetryPolicy;

use crate::net::{LinkClass, Location, NetworkModel};

/// Registry handles for gateway traffic (`cloudsim.gateway.*` and
/// per-link-class `cloudsim.link.<class>.*`).
#[derive(Debug)]
struct GatewayInstruments {
    ship_data: Counter,
    ship_compute: Counter,
    partition_hits: Counter,
    attestation_failures: Counter,
    retries: Counter,
    bytes_moved: Counter,
    /// Makespan histograms indexed by [`LinkClass`] order: local,
    /// intra-region, inter-region.
    link_latency: [Histogram; 3],
}

impl GatewayInstruments {
    fn link_histogram(&self, class: LinkClass) -> &Histogram {
        match class {
            LinkClass::Local => &self.link_latency[0],
            LinkClass::IntraRegion => &self.link_latency[1],
            LinkClass::InterRegion => &self.link_latency[2],
        }
    }
}

/// Fault point consulted before every intercloud shipment: while a
/// [`hc_common::fault::FaultKind::NetworkPartition`] is active here the
/// WAN link is severed.
pub const INTERCLOUD_PARTITION: &str = "intercloud.partition";

/// The plan comparison result for one intercloud execution.
#[derive(Clone, Copy, Debug)]
pub struct IntercloudReport {
    /// Bytes that crossed the inter-cloud link.
    pub bytes_moved: u64,
    /// Transfer time.
    pub transfer: SimDuration,
    /// Attestation overhead (zero for ship-data, which runs in the
    /// already-trusted analytics cloud).
    pub attestation: SimDuration,
    /// Compute time at the execution site.
    pub compute: SimDuration,
    /// Whether the remote workload was attested before starting.
    pub attested: bool,
}

impl IntercloudReport {
    /// End-to-end makespan.
    pub fn makespan(&self) -> SimDuration {
        self.transfer + self.attestation + self.compute
    }
}

/// Errors from gateway operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GatewayError {
    /// The destination refused the workload: attestation failed.
    AttestationFailed {
        /// The verifier's reason.
        reason: String,
    },
    /// The inter-cloud link is partitioned; nothing crossed it.
    LinkPartitioned,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::AttestationFailed { reason } => {
                write!(f, "remote attestation failed: {reason}")
            }
            GatewayError::LinkPartitioned => {
                write!(f, "intercloud link partitioned")
            }
        }
    }
}

impl std::error::Error for GatewayError {}

/// The gateway between a data cloud and an analytics cloud.
#[derive(Debug)]
pub struct IntercloudGateway {
    clock: SimClock,
    net: NetworkModel,
    /// Where the (large) dataset lives.
    pub data_site: Location,
    /// Where the analytics stack (and container registry) lives.
    pub compute_site: Location,
    /// Fixed attestation round-trip charged when a shipped container
    /// starts remotely (quote + verification).
    pub attestation_cost: SimDuration,
    injector: FaultInjector,
    partitioned: Mutex<bool>,
    instruments: Option<GatewayInstruments>,
}

impl IntercloudGateway {
    /// Creates a gateway over the default network model.
    pub fn new(clock: SimClock, data_site: Location, compute_site: Location) -> Self {
        IntercloudGateway {
            clock,
            net: NetworkModel::default(),
            data_site,
            compute_site,
            attestation_cost: SimDuration::from_millis(120),
            injector: FaultInjector::disabled(),
            partitioned: Mutex::new(false),
            instruments: None,
        }
    }

    /// Mirrors gateway traffic into `registry`: shipment and failure
    /// counters under `cloudsim.gateway.*`, bytes moved, and a
    /// simulated transfer-latency histogram per link class under
    /// `cloudsim.link.<class>.sim_latency_ns`.
    pub fn instrument(&mut self, registry: &Registry) {
        self.instruments = Some(GatewayInstruments {
            ship_data: registry.counter("cloudsim.gateway.ship_data"),
            ship_compute: registry.counter("cloudsim.gateway.ship_compute"),
            partition_hits: registry.counter("cloudsim.gateway.partition_hits"),
            attestation_failures: registry.counter("cloudsim.gateway.attestation_failures"),
            retries: registry.counter("cloudsim.gateway.retries"),
            bytes_moved: registry.counter("cloudsim.gateway.bytes_moved"),
            link_latency: [
                registry.histogram("cloudsim.link.local.sim_latency_ns"),
                registry.histogram("cloudsim.link.intra_region.sim_latency_ns"),
                registry.histogram("cloudsim.link.inter_region.sim_latency_ns"),
            ],
        });
    }

    /// Overrides the network model.
    #[must_use]
    pub fn with_network(mut self, net: NetworkModel) -> Self {
        self.net = net;
        self
    }

    /// Attaches a fault injector; a fault scheduled at
    /// [`INTERCLOUD_PARTITION`] severs the WAN link for its window.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// Manually severs the inter-cloud link (e.g. from a DES event).
    pub fn partition_link(&self) {
        *self.partitioned.lock() = true;
    }

    /// Manually heals the inter-cloud link.
    pub fn heal_link(&self) {
        *self.partitioned.lock() = false;
    }

    /// Whether the link is currently severed, by manual flag or by an
    /// active [`INTERCLOUD_PARTITION`] fault window.
    pub fn link_is_partitioned(&self) -> bool {
        *self.partitioned.lock() || self.injector.is_active(INTERCLOUD_PARTITION)
    }

    /// Baseline: ship the dataset to the analytics cloud and compute
    /// there. No attestation needed (workload never leaves its trusted
    /// home), but the whole dataset crosses the WAN.
    pub fn ship_data(
        &self,
        dataset_bytes: u64,
        compute: SimDuration,
    ) -> IntercloudReport {
        let transfer = self
            .net
            .transfer_time(self.data_site, self.compute_site, dataset_bytes);
        let report = IntercloudReport {
            bytes_moved: dataset_bytes,
            transfer,
            attestation: SimDuration::ZERO,
            compute,
            attested: false,
        };
        self.clock.advance(report.makespan());
        if let Some(inst) = &self.instruments {
            inst.ship_data.inc();
            inst.bytes_moved.add(dataset_bytes);
            inst.link_histogram(self.net.classify(self.data_site, self.compute_site))
                .record(transfer.as_nanos());
        }
        report
    }

    /// The paper's design: ship the (much smaller) trusted container to
    /// the data, attest it on arrival, and compute in place.
    ///
    /// # Errors
    ///
    /// Fails when the link is partitioned (nothing moves; only the probe
    /// latency of discovering the severed link is charged) or when
    /// `attestation_verdict` rejects — the workload is never started (the
    /// gateway still charges the transfer + attestation time spent
    /// discovering that).
    pub fn ship_compute(
        &self,
        container_bytes: u64,
        compute: SimDuration,
        attestation_verdict: Result<(), String>,
    ) -> Result<IntercloudReport, GatewayError> {
        if self.link_is_partitioned() {
            // The gateway probes the peer and times out after one WAN RTT.
            self.clock
                .advance(self.net.latency(self.compute_site, self.data_site));
            if let Some(inst) = &self.instruments {
                inst.partition_hits.inc();
            }
            return Err(GatewayError::LinkPartitioned);
        }
        let transfer = self
            .net
            .transfer_time(self.compute_site, self.data_site, container_bytes);
        match attestation_verdict {
            Ok(()) => {
                let report = IntercloudReport {
                    bytes_moved: container_bytes,
                    transfer,
                    attestation: self.attestation_cost,
                    compute,
                    attested: true,
                };
                self.clock.advance(report.makespan());
                if let Some(inst) = &self.instruments {
                    inst.ship_compute.inc();
                    inst.bytes_moved.add(container_bytes);
                    inst.link_histogram(
                        self.net.classify(self.compute_site, self.data_site),
                    )
                    .record(transfer.as_nanos());
                }
                Ok(report)
            }
            Err(reason) => {
                self.clock.advance(transfer + self.attestation_cost);
                if let Some(inst) = &self.instruments {
                    inst.attestation_failures.inc();
                }
                Err(GatewayError::AttestationFailed { reason })
            }
        }
    }

    /// [`ship_compute`](Self::ship_compute) with retry: a partitioned
    /// link is retried with `policy`'s backoff (each delay advances the
    /// sim clock, so a fault window scheduled against the same clock
    /// heals while the gateway backs off). Attestation failures are
    /// terminal and never retried.
    ///
    /// On success returns the report plus the number of retries spent.
    ///
    /// # Errors
    ///
    /// Returns the last [`GatewayError::LinkPartitioned`] when the
    /// partition outlasts the retry budget, or
    /// [`GatewayError::AttestationFailed`] immediately.
    pub fn ship_compute_with_retry(
        &self,
        container_bytes: u64,
        compute: SimDuration,
        attestation_verdict: Result<(), String>,
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> Result<(IntercloudReport, u32), GatewayError> {
        let mut attempt = 1u32;
        loop {
            match self.ship_compute(container_bytes, compute, attestation_verdict.clone()) {
                Ok(report) => return Ok((report, attempt - 1)),
                Err(GatewayError::LinkPartitioned) if attempt < policy.max_attempts() => {
                    self.clock.advance(policy.delay_after(attempt, rng));
                    attempt += 1;
                    if let Some(inst) = &self.instruments {
                        inst.retries.inc();
                    }
                }
                Err(err) => return Err(err),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gateway() -> IntercloudGateway {
        IntercloudGateway::new(SimClock::new(), Location::new(0, 0), Location::new(1, 0))
    }

    const GB: u64 = 1_000_000_000;
    const MB: u64 = 1_000_000;

    #[test]
    fn ship_compute_moves_fewer_bytes_and_finishes_faster() {
        let g = gateway();
        let compute = SimDuration::from_secs(5);
        let data_plan = g.ship_data(10 * GB, compute);
        let compute_plan = g.ship_compute(200 * MB, compute, Ok(())).unwrap();
        assert!(compute_plan.bytes_moved < data_plan.bytes_moved / 10);
        assert!(compute_plan.makespan() < data_plan.makespan());
        assert!(compute_plan.attested);
    }

    #[test]
    fn attestation_overhead_charged() {
        let g = gateway();
        let report = g
            .ship_compute(MB, SimDuration::from_secs(1), Ok(()))
            .unwrap();
        assert_eq!(report.attestation, SimDuration::from_millis(120));
    }

    #[test]
    fn failed_attestation_blocks_execution() {
        let g = gateway();
        let before = g.clock.now();
        let err = g
            .ship_compute(MB, SimDuration::from_secs(1), Err("PCR mismatch".into()))
            .unwrap_err();
        assert_eq!(
            err,
            GatewayError::AttestationFailed {
                reason: "PCR mismatch".into()
            }
        );
        // Time was still spent discovering the failure, but no compute ran.
        let elapsed = g.clock.now().duration_since(before);
        assert!(elapsed >= SimDuration::from_millis(120));
        assert!(elapsed < SimDuration::from_secs(1));
    }

    #[test]
    fn tiny_datasets_favor_ship_data() {
        // Crossover: when the dataset is smaller than the container, the
        // baseline wins — the bench sweeps this.
        let g = gateway();
        let compute = SimDuration::from_millis(10);
        let data_plan = g.ship_data(MB, compute);
        let compute_plan = g.ship_compute(200 * MB, compute, Ok(())).unwrap();
        assert!(data_plan.makespan() < compute_plan.makespan());
    }

    #[test]
    fn partitioned_link_fails_fast_and_heals_manually() {
        let g = gateway();
        g.partition_link();
        assert!(g.link_is_partitioned());
        let err = g
            .ship_compute(MB, SimDuration::from_secs(1), Ok(()))
            .unwrap_err();
        assert_eq!(err, GatewayError::LinkPartitioned);
        g.heal_link();
        assert!(!g.link_is_partitioned());
        assert!(g.ship_compute(MB, SimDuration::from_secs(1), Ok(())).is_ok());
    }

    #[test]
    fn retry_outlasts_scripted_partition_window() {
        use hc_common::fault::{FaultKind, FaultSpec};
        use hc_common::clock::SimInstant;

        let clock = SimClock::new();
        let mut g =
            IntercloudGateway::new(clock.clone(), Location::new(0, 0), Location::new(1, 0));
        let injector = FaultInjector::new(clock.clone(), 0xBEEF);
        // Link down for the first 50ms of sim time.
        injector.schedule(
            INTERCLOUD_PARTITION,
            FaultSpec::always(FaultKind::NetworkPartition)
                .window(SimInstant::ZERO, SimInstant::ZERO + SimDuration::from_millis(50)),
        );
        g.set_fault_injector(injector);

        let policy = RetryPolicy::new(8, SimDuration::from_millis(10))
            .with_total_budget(SimDuration::from_secs(2));
        let mut rng = hc_common::rng::seeded(7);
        let (report, retries) = g
            .ship_compute_with_retry(MB, SimDuration::from_secs(1), Ok(()), &policy, &mut rng)
            .unwrap();
        assert!(retries >= 1, "first attempt lands inside the window");
        assert!(report.attested);
        // The clock crossed the fault window while backing off.
        assert!(clock.now() >= SimInstant::ZERO + SimDuration::from_millis(50));
    }

    #[test]
    fn attestation_failure_is_never_retried() {
        let g = gateway();
        let policy = RetryPolicy::new(5, SimDuration::from_millis(10));
        let mut rng = hc_common::rng::seeded(7);
        let err = g
            .ship_compute_with_retry(
                MB,
                SimDuration::from_secs(1),
                Err("PCR mismatch".into()),
                &policy,
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(
            err,
            GatewayError::AttestationFailed {
                reason: "PCR mismatch".into()
            }
        );
    }

    #[test]
    fn clock_advances_by_makespan() {
        let clock = SimClock::new();
        let g = IntercloudGateway::new(clock.clone(), Location::new(0, 0), Location::new(1, 0));
        let report = g.ship_data(GB, SimDuration::from_secs(1));
        assert_eq!(clock.now().as_nanos(), report.makespan().as_nanos());
    }
}
