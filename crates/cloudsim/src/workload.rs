//! Analytics workload cost model.

use hc_common::clock::SimDuration;

use crate::infra::InfraCloud;
use crate::net::{Location, NetworkModel};
use hc_common::id::VmId;

/// An analytics workload: compute plus data movement.
#[derive(Clone, Copy, Debug)]
pub struct AnalyticsWorkload {
    /// Total compute in floating-point operations.
    pub flops: u64,
    /// Input dataset size in bytes.
    pub input_bytes: u64,
    /// Result size in bytes.
    pub output_bytes: u64,
}

/// The cost breakdown of one workload execution.
#[derive(Clone, Copy, Debug)]
pub struct ExecutionReport {
    /// Time spent moving the input to the compute site.
    pub input_transfer: SimDuration,
    /// Pure compute time.
    pub compute: SimDuration,
    /// Time spent returning results.
    pub output_transfer: SimDuration,
    /// Bytes moved across the network in total.
    pub bytes_moved: u64,
}

impl ExecutionReport {
    /// End-to-end makespan.
    pub fn makespan(&self) -> SimDuration {
        self.input_transfer + self.compute + self.output_transfer
    }
}

/// Runs `workload` on `vm`, with input data at `data_location` and
/// results returned to `result_location`.
///
/// # Errors
///
/// Returns `None` when the VM does not exist.
pub fn execute(
    cloud: &InfraCloud,
    net: &NetworkModel,
    vm: VmId,
    workload: &AnalyticsWorkload,
    data_location: Location,
    result_location: Location,
) -> Option<ExecutionReport> {
    let vm_loc = cloud.vm_location(vm)?;
    let flops = cloud.vm_flops(vm)?.max(1);
    let input_transfer = net.transfer_time(data_location, vm_loc, workload.input_bytes);
    let compute_nanos = (workload.flops as u128 * 1_000_000_000u128 / flops as u128) as u64;
    let compute = SimDuration::from_nanos(compute_nanos);
    let output_transfer = net.transfer_time(vm_loc, result_location, workload.output_bytes);
    let mut bytes_moved = 0;
    if net.classify(data_location, vm_loc) != crate::net::LinkClass::Local {
        bytes_moved += workload.input_bytes;
    }
    if net.classify(vm_loc, result_location) != crate::net::LinkClass::Local {
        bytes_moved += workload.output_bytes;
    }
    Some(ExecutionReport {
        input_transfer,
        compute,
        output_transfer,
        bytes_moved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (InfraCloud, NetworkModel, VmId) {
        let mut cloud = InfraCloud::new();
        cloud.add_host(0, 16, 10_000_000_000);
        let vm = cloud.provision_vm(0, 16).unwrap();
        (cloud, NetworkModel::default(), vm)
    }

    #[test]
    fn local_data_is_cheap() {
        let (cloud, net, vm) = setup();
        let vm_loc = cloud.vm_location(vm).unwrap();
        let w = AnalyticsWorkload {
            flops: 1_000_000_000,
            input_bytes: 100_000_000,
            output_bytes: 1_000,
        };
        let local = execute(&cloud, &net, vm, &w, vm_loc, vm_loc).unwrap();
        let remote = execute(&cloud, &net, vm, &w, Location::new(1, 0), vm_loc).unwrap();
        assert!(remote.makespan() > local.makespan());
        assert_eq!(local.bytes_moved, 0);
        assert_eq!(remote.bytes_moved, 100_000_000);
    }

    #[test]
    fn compute_time_scales_with_flops() {
        let (cloud, net, vm) = setup();
        let vm_loc = cloud.vm_location(vm).unwrap();
        let small = AnalyticsWorkload {
            flops: 10_000_000_000,
            input_bytes: 0,
            output_bytes: 0,
        };
        let report = execute(&cloud, &net, vm, &small, vm_loc, vm_loc).unwrap();
        assert_eq!(report.compute.as_millis(), 1_000); // 10 GFLOP at 10 GFLOP/s
    }

    #[test]
    fn missing_vm_returns_none() {
        let (cloud, net, _) = setup();
        let w = AnalyticsWorkload {
            flops: 1,
            input_bytes: 0,
            output_bytes: 0,
        };
        assert!(execute(
            &cloud,
            &net,
            VmId::from_raw(999),
            &w,
            Location::new(0, 0),
            Location::new(0, 0)
        )
        .is_none());
    }
}
