//! Offline shim of `proptest`.
//!
//! Re-implements the surface the workspace's property tests use:
//! `proptest! { #[test] fn f(x in strategy, ...) { ... } }` with
//! integer/float range strategies, `any::<T>()`,
//! `proptest::collection::vec`, `proptest::array::uniform32`, regex-lite
//! string strategies (`"[a-z ]{0,20}"`), tuple strategies, and the
//! `prop_assert*` / `prop_assume` macros. Unlike upstream there is no
//! shrinking and no persisted failure seeds: each test function derives
//! a fixed RNG seed from its own name, so runs are fully deterministic
//! and failures reproduce immediately.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to every strategy.
pub type TestRng = StdRng;

/// Derives the deterministic per-test RNG from the test's name.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Runner configuration.
pub mod config {
    /// Mirrors `proptest::test_runner::Config` for the fields used here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while
            // still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64
    );

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Regex-lite string strategy: a sequence of literal characters and
    /// `[class]{m,n}` atoms, where a class holds literals and `a-z`
    /// ranges. Covers the patterns used in this workspace (e.g.
    /// `"[a-z ]{0,20}"`, `"[ -~]{0,80}"`).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0;
            while i < chars.len() {
                let (choices, next) = parse_atom(&chars, i);
                i = next;
                let (lo, hi, next) = parse_repetition(&chars, i);
                i = next;
                let count = rng.gen_range(lo..=hi);
                for _ in 0..count {
                    out.push(choices[rng.gen_range(0..choices.len())]);
                }
            }
            out
        }
    }

    fn parse_atom(chars: &[char], start: usize) -> (Vec<char>, usize) {
        if chars[start] == '[' {
            let mut choices = Vec::new();
            let mut i = start + 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                    for code in lo..=hi {
                        if let Some(c) = char::from_u32(code) {
                            choices.push(c);
                        }
                    }
                    i += 3;
                } else {
                    choices.push(chars[i]);
                    i += 1;
                }
            }
            assert!(!choices.is_empty(), "empty character class in strategy pattern");
            (choices, i + 1)
        } else {
            (vec![chars[start]], start + 1)
        }
    }

    fn parse_repetition(chars: &[char], start: usize) -> (usize, usize, usize) {
        if start >= chars.len() || chars[start] != '{' {
            return (1, 1, start);
        }
        let close = chars[start..]
            .iter()
            .position(|&c| c == '}')
            .expect("unclosed repetition in strategy pattern")
            + start;
        let body: String = chars[start + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad repetition bound"),
                hi.trim().parse().expect("bad repetition bound"),
            ),
            None => {
                let n = body.trim().parse().expect("bad repetition bound");
                (n, n)
            }
        };
        (lo, hi, close + 1)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
    );

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `proptest::collection` strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` of `element`-generated values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::array` strategies.
pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    /// The strategy returned by [`uniform32`].
    pub struct Uniform32<S>(S);

    /// A `[T; 32]` where every element comes from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// The glob-imported convenience surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg (<$crate::config::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::config::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Upstream regenerates rejected cases; the shim simply moves on, which
/// preserves determinism at a small cost in effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_strategy_obeys_class_and_bounds() {
        let mut rng = crate::test_rng("string_pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z ]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[ -~]{0,80}", &mut rng);
            assert!(t.len() <= 80);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vecs_fit_bounds(
            items in crate::collection::vec(any::<u8>(), 1..9),
            flag in any::<bool>(),
            scale in 0.5f64..2.0,
        ) {
            prop_assume!(items.len() != 3);
            prop_assert!(!items.is_empty() && items.len() < 9);
            prop_assert!((0.5..2.0).contains(&scale));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn uniform32_has_32_entries(arr in crate::array::uniform32(any::<u8>())) {
            prop_assert_eq!(arr.len(), 32);
        }
    }

    #[test]
    fn same_name_same_stream() {
        use rand::Rng;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
