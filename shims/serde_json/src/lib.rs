//! Offline shim of `serde_json` over the serde shim's [`serde::Value`].
//!
//! Emits compact JSON (no whitespace — the FHIR tests assert on
//! `"key":"value"` adjacency) and parses with a recursive-descent
//! reader. Numbers keep full `u128`/`i128` integer precision, which the
//! workspace's 128-bit ids require.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error for malformed JSON or a shape mismatch during rebuild.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------- emitter

fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: keep a decimal point so the value
                // re-parses as a float.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(v, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Float(f))
        } else if let Some(digits) = text.strip_prefix('-') {
            let magnitude: i128 = digits
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            if magnitude == 0 {
                Ok(Value::Uint(0))
            } else {
                Ok(Value::Int(-magnitude))
            }
        } else {
            let u: u128 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Uint(u))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let mut inner = std::collections::BTreeMap::new();
        inner.insert("id".to_string(), Value::Uint(u128::MAX));
        inner.insert("neg".to_string(), Value::Int(-42));
        inner.insert("name".to_string(), Value::Str("héllo \"x\"\n".to_string()));
        let doc = Value::Array(vec![
            Value::Object(inner),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ]);
        let mut text = String::new();
        emit(&doc, &mut text);
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn compact_output_no_spaces() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("resourceType".to_string(), Value::Str("Patient".to_string()));
        let mut out = String::new();
        emit(&Value::Object(map), &mut out);
        assert_eq!(out, "{\"resourceType\":\"Patient\"}");
    }

    #[test]
    fn whole_floats_reparse_as_floats() {
        let mut out = String::new();
        emit(&Value::Float(3.0), &mut out);
        assert_eq!(out, "3.0");
        assert_eq!(parse(&out).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn typed_round_trip_through_api() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_slice::<u32>(&[0xFF, 0xFE]).is_err());
    }
}
