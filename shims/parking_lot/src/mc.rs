//! Model-checker interposition: the shared event vocabulary and the
//! process-global probe the `hc-mc` concurrency checker plugs into.
//!
//! Compiled only under the `mc` feature. The instrumented primitives in
//! this shim (and in the `crossbeam` shim, which depends on this module
//! for the vocabulary) call [`emit`] around every visible operation:
//!
//! * **pre events** fire *before* the real operation touches the
//!   underlying `std::sync` primitive — a controlled scheduler may block
//!   the calling thread here until the operation is both *scheduled* and
//!   *enabled*, which is what makes exhaustive interleaving exploration
//!   possible without ever deadlocking on a real lock;
//! * **post events** fire after the operation and carry its outcome
//!   (try-lock success, channel delivery, endpoint counts), letting a
//!   trace recorder or scheduler keep exact object state.
//!
//! When no probe is installed, [`emit`] is a single relaxed atomic load
//! — the instrumentation cost of an idle `mc` build is negligible, and
//! builds without the feature carry none at all. Probe implementations
//! must not call instrumented primitives; a thread-local reentrancy
//! guard turns any such nested emission into a no-op as a backstop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of an instrumented object (lock or channel), process-unique
/// and assigned in creation/first-use order so traces are stable for a
/// deterministic program.
pub type ObjectId = u64;

/// Which acquisition mode a lock event concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// A `Mutex` (exclusive).
    Mutex,
    /// An `RwLock` taken shared.
    RwRead,
    /// An `RwLock` taken exclusive.
    RwWrite,
}

/// One interposition event. Pre events are scheduling points; post
/// events are outcome notifications (see module docs).
#[derive(Clone, Copy, Debug)]
pub enum ProbeEvent<'a> {
    /// Pre: about to block acquiring `lock`.
    Acquire {
        /// The lock being acquired.
        lock: ObjectId,
        /// Acquisition mode.
        kind: LockKind,
    },
    /// Post: the acquisition completed.
    Acquired {
        /// The lock acquired.
        lock: ObjectId,
        /// Acquisition mode.
        kind: LockKind,
    },
    /// Pre: about to attempt a non-blocking acquisition.
    TryAcquire {
        /// The lock being tried.
        lock: ObjectId,
        /// Acquisition mode.
        kind: LockKind,
    },
    /// Post: outcome of the non-blocking attempt.
    TryAcquired {
        /// The lock tried.
        lock: ObjectId,
        /// Acquisition mode.
        kind: LockKind,
        /// Whether the lock was obtained.
        acquired: bool,
    },
    /// Pre: about to release `lock` (releases enable waiting threads, so
    /// this is a scheduling point too).
    Release {
        /// The lock being released.
        lock: ObjectId,
        /// Mode it was held in.
        kind: LockKind,
    },
    /// Pre: about to enqueue on a channel.
    ChanSend {
        /// The channel.
        chan: ObjectId,
    },
    /// Post: enqueue outcome (`delivered == false` means every receiver
    /// was gone and the message bounced).
    ChanSent {
        /// The channel.
        chan: ObjectId,
        /// Whether the message was queued.
        delivered: bool,
    },
    /// Pre: about to block receiving; only enabled when the queue is
    /// non-empty or every sender has dropped.
    ChanRecv {
        /// The channel.
        chan: ObjectId,
    },
    /// Pre: about to attempt a non-blocking receive.
    ChanTryRecv {
        /// The channel.
        chan: ObjectId,
    },
    /// Post: receive outcome.
    ChanReceived {
        /// The channel.
        chan: ObjectId,
        /// Whether a message was dequeued.
        got: bool,
    },
    /// Post: a channel endpoint was cloned or dropped.
    ChanEndpoints {
        /// The channel.
        chan: ObjectId,
        /// Live senders after the change.
        senders: usize,
        /// Live receivers after the change.
        receivers: usize,
    },
    /// Pre: a logical shared-memory access annotation (from
    /// `hc_common::conc::mc::access`); `loc` names the location.
    Access {
        /// Logical location name.
        loc: &'a str,
        /// Whether the access mutates the location.
        write: bool,
    },
    /// Pre: a voluntary scheduling point with no attached operation.
    Yield,
    /// Post: model code observed an invariant violation.
    Violation {
        /// Human-readable description.
        msg: &'a str,
    },
}

/// Receives interposition events. Implementations must be callable from
/// any thread and must not touch instrumented primitives.
pub trait Probe: Send + Sync {
    /// Handles one event; pre events may block the calling thread.
    fn event(&self, ev: ProbeEvent<'_>);
}

/// `true` while a probe is installed — the one-load fast path.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The installed probe. `std::sync` (not this crate's own wrappers) so
/// installing/clearing never re-enters the instrumentation.
static PROBE: std::sync::RwLock<Option<Arc<dyn Probe>>> = std::sync::RwLock::new(None);

/// Monotonic object-id source shared by every instrumented shim.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Reentrancy backstop: set while dispatching into the probe.
    static IN_PROBE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs `probe` as the process-global event sink, replacing any
/// previous one.
pub fn set_probe(probe: Arc<dyn Probe>) {
    let mut slot = PROBE.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(probe);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the installed probe; subsequent events are dropped on the
/// fast path.
pub fn clear_probe() {
    let mut slot = PROBE.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    ACTIVE.store(false, Ordering::SeqCst);
    *slot = None;
}

/// A fresh process-unique object id (used by channels, which know their
/// identity at construction).
pub fn fresh_object_id() -> ObjectId {
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Reads the lazily-assigned id in `slot`, assigning a fresh one on
/// first use (locks are created with `const fn`, so their ids cannot be
/// drawn at construction).
pub fn lazy_object_id(slot: &AtomicU64) -> ObjectId {
    let id = slot.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = fresh_object_id();
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(raced) => raced,
    }
}

/// Whether a probe is currently installed. Annotation sites that need
/// to format a location name can branch on this to skip the formatting
/// cost when nothing is listening.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Dispatches `ev` to the installed probe, if any.
pub fn emit(ev: ProbeEvent<'_>) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let entered = IN_PROBE.with(|f| {
        if f.get() {
            false
        } else {
            f.set(true);
            true
        }
    });
    if !entered {
        return; // nested emission from inside a probe — drop it
    }
    let probe = PROBE
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(p) = probe {
        p.event(ev);
    }
    IN_PROBE.with(|f| f.set(false));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountingProbe(AtomicUsize);
    impl Probe for CountingProbe {
        fn event(&self, _ev: ProbeEvent<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
            // Nested emissions must be swallowed by the reentrancy guard.
            emit(ProbeEvent::Yield);
        }
    }

    #[test]
    fn probe_receives_events_and_reentrancy_is_blocked() {
        let probe = Arc::new(CountingProbe(AtomicUsize::new(0)));
        set_probe(probe.clone());
        emit(ProbeEvent::Yield);
        emit(ProbeEvent::Access { loc: "x", write: true });
        clear_probe();
        emit(ProbeEvent::Yield); // dropped: no probe installed
        assert_eq!(probe.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn lazy_ids_are_stable_and_unique() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let ia = lazy_object_id(&a);
        assert_eq!(lazy_object_id(&a), ia);
        assert_ne!(lazy_object_id(&b), ia);
    }
}
