//! A dependency-free shim of the `parking_lot` lock API.
//!
//! Wraps `std::sync` primitives with the non-poisoning interface the
//! workspace uses (`lock()` returning the guard directly). A poisoned
//! std lock is recovered by taking the inner guard — matching
//! `parking_lot`'s behavior of not propagating panics as poison.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// The shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// The exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
