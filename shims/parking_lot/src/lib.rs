//! A dependency-free shim of the `parking_lot` lock API.
//!
//! Wraps `std::sync` primitives with the non-poisoning interface the
//! workspace uses (`lock()` returning the guard directly). A poisoned
//! std lock is recovered by taking the inner guard — matching
//! `parking_lot`'s behavior of not propagating panics as poison.

use std::fmt;
use std::ops::{Deref, DerefMut};

#[cfg(feature = "mc")]
pub mod mc;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "mc")]
    mc_id: std::sync::atomic::AtomicU64,
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "mc")]
    mc_id: mc::ObjectId,
    inner: std::sync::MutexGuard<'a, T>,
}

#[cfg(feature = "mc")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        mc::emit(mc::ProbeEvent::Release {
            lock: self.mc_id,
            kind: mc::LockKind::Mutex,
        });
    }
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "mc")]
            mc_id: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "mc")]
        let id = {
            let id = mc::lazy_object_id(&self.mc_id);
            mc::emit(mc::ProbeEvent::Acquire {
                lock: id,
                kind: mc::LockKind::Mutex,
            });
            id
        };
        let guard = MutexGuard {
            #[cfg(feature = "mc")]
            mc_id: id,
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        };
        #[cfg(feature = "mc")]
        mc::emit(mc::ProbeEvent::Acquired {
            lock: id,
            kind: mc::LockKind::Mutex,
        });
        guard
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "mc")]
        let id = {
            let id = mc::lazy_object_id(&self.mc_id);
            mc::emit(mc::ProbeEvent::TryAcquire {
                lock: id,
                kind: mc::LockKind::Mutex,
            });
            id
        };
        let out = match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard {
                #[cfg(feature = "mc")]
                mc_id: id,
                inner: guard,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                #[cfg(feature = "mc")]
                mc_id: id,
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "mc")]
        mc::emit(mc::ProbeEvent::TryAcquired {
            lock: id,
            kind: mc::LockKind::Mutex,
            acquired: out.is_some(),
        });
        out
    }

    /// The model-checker identity of this lock (assigning one on first
    /// use). Lets harness code name locks for race/cycle reports.
    #[cfg(feature = "mc")]
    pub fn mc_object_id(&self) -> mc::ObjectId {
        mc::lazy_object_id(&self.mc_id)
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "mc")]
    mc_id: std::sync::atomic::AtomicU64,
    inner: std::sync::RwLock<T>,
}

/// The shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "mc")]
    mc_id: mc::ObjectId,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// The exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "mc")]
    mc_id: mc::ObjectId,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

#[cfg(feature = "mc")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        mc::emit(mc::ProbeEvent::Release {
            lock: self.mc_id,
            kind: mc::LockKind::RwRead,
        });
    }
}

#[cfg(feature = "mc")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        mc::emit(mc::ProbeEvent::Release {
            lock: self.mc_id,
            kind: mc::LockKind::RwWrite,
        });
    }
}

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "mc")]
            mc_id: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "mc")]
        let id = {
            let id = mc::lazy_object_id(&self.mc_id);
            mc::emit(mc::ProbeEvent::Acquire {
                lock: id,
                kind: mc::LockKind::RwRead,
            });
            id
        };
        let guard = RwLockReadGuard {
            #[cfg(feature = "mc")]
            mc_id: id,
            inner: self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        };
        #[cfg(feature = "mc")]
        mc::emit(mc::ProbeEvent::Acquired {
            lock: id,
            kind: mc::LockKind::RwRead,
        });
        guard
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "mc")]
        let id = {
            let id = mc::lazy_object_id(&self.mc_id);
            mc::emit(mc::ProbeEvent::Acquire {
                lock: id,
                kind: mc::LockKind::RwWrite,
            });
            id
        };
        let guard = RwLockWriteGuard {
            #[cfg(feature = "mc")]
            mc_id: id,
            inner: self
                .inner
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        };
        #[cfg(feature = "mc")]
        mc::emit(mc::ProbeEvent::Acquired {
            lock: id,
            kind: mc::LockKind::RwWrite,
        });
        guard
    }

    /// The model-checker identity of this lock (assigning one on first
    /// use).
    #[cfg(feature = "mc")]
    pub fn mc_object_id(&self) -> mc::ObjectId {
        mc::lazy_object_id(&self.mc_id)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
