//! Offline shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the item's `TokenStream` by hand and
//! emits impl code as a formatted string. It supports the shapes the
//! workspace actually derives: named structs, tuple/newtype structs,
//! and enums with unit / newtype / tuple / struct variants, in the
//! default externally-tagged form or the internally-tagged
//! `#[serde(tag = "...")]` form. Generic types are rejected.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

struct Item {
    name: String,
    tag: Option<String>,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (the shim's value-tree rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (the shim's value-tree rebuilding).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut iter: TokenIter = input.into_iter().peekable();
    let mut tag = None;

    // Leading attributes (doc comments arrive as `#[doc = ...]`) and
    // visibility, capturing `#[serde(tag = "...")]` along the way.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    if let Some(t) = serde_tag_attr(&g) {
                        tag = Some(t);
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    iter.next();
                }
            }
            _ => break,
        }
    }

    let keyword = expect_ident(&mut iter, "`struct` or `enum`");
    let name = expect_ident(&mut iter, "type name");
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(&g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(&g))
            }
            other => panic!("unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports structs and enums, got `{other}`"),
    };

    Item { name, tag, kind }
}

/// Extracts `tag = "..."` from a `#[serde(...)]` attribute group body.
fn serde_tag_attr(attr_body: &Group) -> Option<String> {
    if attr_body.delimiter() != Delimiter::Bracket {
        return None;
    }
    let mut iter = attr_body.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return None;
    };
    let mut args = args.stream().into_iter();
    while let Some(tok) = args.next() {
        if matches!(&tok, TokenTree::Ident(id) if id.to_string() == "tag") {
            match (args.next(), args.next()) {
                (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                    if eq.as_char() == '=' =>
                {
                    return Some(unquote(&lit.to_string()));
                }
                _ => return None,
            }
        }
    }
    None
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn expect_ident(iter: &mut TokenIter, what: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, got {other:?}"),
    }
}

/// Skips `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    iter.next();
                }
            }
            _ => return,
        }
    }
}

/// Consumes one type, tracking `<`/`>` nesting so commas inside generic
/// arguments don't end the field early; stops after the field's
/// trailing comma (or at end of stream).
fn skip_type(iter: &mut TokenIter) {
    let mut angle_depth = 0i32;
    for tok in iter.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

fn parse_named_fields(body: &Group) -> Vec<String> {
    let mut iter: TokenIter = body.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field, got {other:?}"),
                }
                skip_type(&mut iter);
            }
            None => break,
            Some(other) => panic!("unexpected token in field list: {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(body: &Group) -> usize {
    let mut iter: TokenIter = body.stream().into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut iter);
    }
    count
}

fn parse_variants(body: &Group) -> Vec<Variant> {
    let mut iter: TokenIter = body.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("unexpected token in variant list: {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.clone());
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(&g.clone());
                iter.next();
                if arity == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(other) => panic!("expected `,` after variant, got {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut out = String::from(
                "let mut __map = ::std::collections::BTreeMap::new();\n",
            );
            for f in fields {
                out.push_str(&format!(
                    "__map.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(__map)");
            out
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => gen_serialize_enum(name, item.tag.as_deref(), variants),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_serialize_enum(name: &str, tag: Option<&str>, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        let arm = match (&v.kind, tag) {
            (VariantKind::Unit, None) => format!(
                "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
            ),
            (VariantKind::Unit, Some(tag)) => format!(
                "{name}::{vn} => {{\n\
                     let mut __map = ::std::collections::BTreeMap::new();\n\
                     __map.insert(\"{tag}\".to_string(), ::serde::Value::Str(\"{vn}\".to_string()));\n\
                     ::serde::Value::Object(__map)\n\
                 }}\n"
            ),
            (VariantKind::Newtype, None) => format!(
                "{name}::{vn}(__f0) => {{\n\
                     let mut __map = ::std::collections::BTreeMap::new();\n\
                     __map.insert(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0));\n\
                     ::serde::Value::Object(__map)\n\
                 }}\n"
            ),
            (VariantKind::Newtype, Some(tag)) => format!(
                "{name}::{vn}(__f0) => {{\n\
                     match ::serde::Serialize::to_value(__f0) {{\n\
                         ::serde::Value::Object(mut __map) => {{\n\
                             __map.insert(\"{tag}\".to_string(), ::serde::Value::Str(\"{vn}\".to_string()));\n\
                             ::serde::Value::Object(__map)\n\
                         }}\n\
                         __other => panic!(\"internally tagged variant {name}::{vn} must serialize to an object\"),\n\
                     }}\n\
                 }}\n"
            ),
            (VariantKind::Tuple(n), _) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vn}({}) => {{\n\
                         let mut __map = ::std::collections::BTreeMap::new();\n\
                         __map.insert(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]));\n\
                         ::serde::Value::Object(__map)\n\
                     }}\n",
                    binds.join(", "),
                    elems.join(", ")
                )
            }
            (VariantKind::Struct(fields), tag) => {
                let binds = fields.join(", ");
                let mut inner = String::from(
                    "let mut __inner = ::std::collections::BTreeMap::new();\n",
                );
                for f in fields {
                    inner.push_str(&format!(
                        "__inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                    ));
                }
                match tag {
                    None => format!(
                        "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __map = ::std::collections::BTreeMap::new();\n\
                             __map.insert(\"{vn}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__map)\n\
                         }}\n"
                    ),
                    Some(tag) => format!(
                        "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             __inner.insert(\"{tag}\".to_string(), ::serde::Value::Str(\"{vn}\".to_string()));\n\
                             ::serde::Value::Object(__inner)\n\
                         }}\n"
                    ),
                }
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut out = format!(
                "let __map = ::serde::__private::as_object(__value, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                out.push_str(&format!("{f}: ::serde::__private::field(__map, \"{f}\")?,\n"));
            }
            out.push_str("})");
            out
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let mut out = format!(
                "let __items = ::serde::__private::as_array(__value, \"{name}\")?;\n\
                 if __items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::msg(\n\
                         format!(\"{name} expects {n} elements, got {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                out.push_str(&format!("::serde::Deserialize::from_value(&__items[{i}])?,\n"));
            }
            out.push_str("))");
            out
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => match item.tag.as_deref() {
            Some(tag) => gen_deserialize_tagged_enum(name, tag, variants),
            None => gen_deserialize_plain_enum(name, variants),
        },
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize_plain_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            VariantKind::Newtype => payload_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__payload)?)),\n"
            )),
            VariantKind::Tuple(n) => {
                let mut arm = format!(
                    "\"{vn}\" => {{\n\
                         let __items = ::serde::__private::as_array(__payload, \"{name}::{vn}\")?;\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::msg(\n\
                                 format!(\"{name}::{vn} expects {n} elements, got {{}}\", __items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vn}(\n"
                );
                for i in 0..*n {
                    arm.push_str(&format!("::serde::Deserialize::from_value(&__items[{i}])?,\n"));
                }
                arm.push_str("))\n}\n");
                payload_arms.push_str(&arm);
            }
            VariantKind::Struct(fields) => {
                let mut arm = format!(
                    "\"{vn}\" => {{\n\
                         let __inner = ::serde::__private::as_object(__payload, \"{name}::{vn}\")?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{\n"
                );
                for f in fields {
                    arm.push_str(&format!(
                        "{f}: ::serde::__private::field(__inner, \"{f}\")?,\n"
                    ));
                }
                arm.push_str("})\n}\n");
                payload_arms.push_str(&arm);
            }
        }
    }
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }},\n\
             ::serde::Value::Object(__outer) if __outer.len() == 1 => {{\n\
                 let (__variant, __payload) = __outer.iter().next().unwrap();\n\
                 match __variant.as_str() {{\n\
                     {payload_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                 format!(\"cannot deserialize {name} from {{__other:?}}\"))),\n\
         }}"
    )
}

fn gen_deserialize_tagged_enum(name: &str, tag: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__value)?)),\n"
            )),
            VariantKind::Tuple(_) => panic!(
                "internally tagged enum {name} cannot hold tuple variant {vn}"
            ),
            VariantKind::Struct(fields) => {
                let mut arm = format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{\n"
                );
                for f in fields {
                    arm.push_str(&format!(
                        "{f}: ::serde::__private::field(__map, \"{f}\")?,\n"
                    ));
                }
                arm.push_str("}),\n");
                arms.push_str(&arm);
            }
        }
    }
    format!(
        "let __map = ::serde::__private::as_object(__value, \"{name}\")?;\n\
         let __tag = ::serde::__private::tag(__map, \"{tag}\", \"{name}\")?;\n\
         match __tag {{\n\
             {arms}\
             __other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         }}"
    )
}
