//! A dependency-free shim of `crossbeam::channel`.
//!
//! Implements the unbounded multi-producer multi-consumer channel surface
//! the workspace uses (`unbounded`, cloneable [`channel::Sender`] /
//! [`channel::Receiver`], `send`, `recv`, `try_recv`, `len`) over a
//! `Mutex<VecDeque>` + `Condvar`. Throughput is far below real
//! crossbeam, but the ingestion queues here hold at most thousands of
//! jobs, where lock contention is negligible.

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    #[cfg(feature = "mc")]
    use parking_lot::mc;

    struct Shared<T> {
        #[cfg(feature = "mc")]
        mc_id: mc::ObjectId,
        queue: Mutex<QueueState<T>>,
        ready: Condvar,
    }

    #[cfg(feature = "mc")]
    impl<T> Shared<T> {
        /// Reports the post-change endpoint counts to the probe.
        fn emit_endpoints(&self, senders: usize, receivers: usize) {
            mc::emit(mc::ProbeEvent::ChanEndpoints {
                chan: self.mc_id,
                senders,
                receivers,
            });
        }
    }

    struct QueueState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders dropped.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            #[cfg(feature = "mc")]
            mc_id: mc::fresh_object_id(),
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks. Fails (returning the value,
        /// like real crossbeam) once every receiver has been dropped —
        /// publishers rely on this to prune dead subscribers.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            #[cfg(feature = "mc")]
            mc::emit(mc::ProbeEvent::ChanSend {
                chan: self.shared.mc_id,
            });
            let mut state = self.shared.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                drop(state);
                #[cfg(feature = "mc")]
                mc::emit(mc::ProbeEvent::ChanSent {
                    chan: self.shared.mc_id,
                    delivered: false,
                });
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            #[cfg(feature = "mc")]
            mc::emit(mc::ProbeEvent::ChanSent {
                chan: self.shared.mc_id,
                delivered: true,
            });
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").items.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The model-checker identity of the underlying channel.
        #[cfg(feature = "mc")]
        pub fn mc_object_id(&self) -> mc::ObjectId {
            self.shared.mc_id
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders += 1;
            #[cfg(feature = "mc")]
            let (s, r) = (state.senders, state.receivers);
            drop(state);
            #[cfg(feature = "mc")]
            self.shared.emit_endpoints(s, r);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            let last = state.senders == 0;
            #[cfg(feature = "mc")]
            let (s, r) = (state.senders, state.receivers);
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
            #[cfg(feature = "mc")]
            self.shared.emit_endpoints(s, r);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            #[cfg(feature = "mc")]
            mc::emit(mc::ProbeEvent::ChanTryRecv {
                chan: self.shared.mc_id,
            });
            let mut state = self.shared.queue.lock().expect("channel lock");
            let out = match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            };
            drop(state);
            #[cfg(feature = "mc")]
            mc::emit(mc::ProbeEvent::ChanReceived {
                chan: self.shared.mc_id,
                got: out.is_ok(),
            });
            out
        }

        /// Blocks until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            #[cfg(feature = "mc")]
            mc::emit(mc::ProbeEvent::ChanRecv {
                chan: self.shared.mc_id,
            });
            let mut state = self.shared.queue.lock().expect("channel lock");
            let out = loop {
                if let Some(v) = state.items.pop_front() {
                    break Ok(v);
                }
                if state.senders == 0 {
                    break Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            };
            drop(state);
            #[cfg(feature = "mc")]
            mc::emit(mc::ProbeEvent::ChanReceived {
                chan: self.shared.mc_id,
                got: out.is_ok(),
            });
            out
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").items.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The model-checker identity of the underlying channel.
        #[cfg(feature = "mc")]
        pub fn mc_object_id(&self) -> mc::ObjectId {
            self.shared.mc_id
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers += 1;
            #[cfg(feature = "mc")]
            let (s, r) = (state.senders, state.receivers);
            drop(state);
            #[cfg(feature = "mc")]
            self.shared.emit_endpoints(s, r);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers -= 1;
            #[cfg(feature = "mc")]
            let (s, r) = (state.senders, state.receivers);
            drop(state);
            #[cfg(feature = "mc")]
            self.shared.emit_endpoints(s, r);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            drop(rx);
            assert_eq!(tx.send(1), Ok(()));
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn multi_consumer_drains() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let rx2 = rx.clone();
            let handle = std::thread::spawn(move || {
                let mut n = 0;
                while rx2.try_recv().is_ok() {
                    n += 1;
                }
                n
            });
            let mut local = 0;
            while rx.try_recv().is_ok() {
                local += 1;
            }
            assert_eq!(local + handle.join().unwrap(), 100);
        }
    }
}
