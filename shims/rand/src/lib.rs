//! A dependency-free, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external crates the seed depended on are vendored as local
//! shims under `crates/shims/`. This crate implements exactly the `rand`
//! 0.8 surface the workspace uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] — on top of a xoshiro256++ core seeded through
//! SplitMix64. Streams are deterministic for a fixed seed, which is all
//! the simulation requires (nothing here is cryptographic).

/// The raw random-word source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that the `Standard` distribution can produce (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                } else {
                    assert!(low < high, "cannot sample empty range");
                }
                let span = (high as i128).wrapping_sub(low as i128) as u128
                    + u128::from(inclusive);
                let r = u128::sample(rng) % span;
                ((low as i128).wrapping_add(r as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if inclusive {
            assert!(low <= high, "cannot sample empty range");
        } else {
            assert!(low < high, "cannot sample empty range");
        }
        let span = high.wrapping_sub(low).wrapping_add(u128::from(inclusive));
        if span == 0 {
            // Inclusive over the full u128 domain.
            return u128::sample(rng);
        }
        low.wrapping_add(u128::sample(rng) % span)
    }
}

impl SampleUniform for i128 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        let offset =
            u128::sample_range(rng, 0, high.wrapping_sub(low) as u128, inclusive);
        low.wrapping_add(offset as i128)
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                } else {
                    assert!(low < high, "cannot sample empty range");
                }
                low + <$t as Standard>::sample(rng) * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`]. The single blanket impl per
/// range shape (matching upstream) is what lets integer/float literals
/// in `gen_range(0..n)` infer their type from surrounding context.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Buffers [`Rng::fill`] can populate.
pub trait Fill {
    /// Fills `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but the contract the
    /// workspace relies on — a fixed seed yields a fixed stream — holds.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_covers_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn generic_unsized_bound_usable() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u128 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert_ne!(draw(&mut rng), draw(&mut rng));
    }
}
