//! A dependency-free shim of the `serde` facade.
//!
//! Instead of upstream's visitor-based serializer/deserializer pair, this
//! shim routes everything through a JSON-shaped [`Value`] tree:
//! [`Serialize`] renders a type into a `Value` and [`Deserialize`]
//! rebuilds the type from one. The companion `serde_json` shim then only
//! has to emit and parse `Value`s. This supports exactly what the
//! workspace relies on — derived impls over structs/enums of primitives,
//! strings, collections and nested serde types, including the
//! internally-tagged `#[serde(tag = "...")]` enum form — at a fraction of
//! the machinery.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree: the interchange format between
/// [`Serialize`], [`Deserialize`] and the `serde_json` shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer (canonical form for all unsigned values
    /// and for signed values ≥ 0).
    Uint(u128),
    /// A strictly negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with string keys.
    Object(BTreeMap<String, Value>),
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from any displayable message.
    pub fn msg(msg: impl fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a document tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a document tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(*self as u128)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Uint(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(DeError::msg(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::Uint(*self as u128)
                } else {
                    Value::Int(*self as i128)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::Uint(u) => i128::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t))))?,
                    Value::Int(i) => *i,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected {} got {other:?}", stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Uint(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::msg(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!("expected single-char string got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = match value {
            Value::Array(items) => items,
            other => return Err(DeError::msg(format!("expected array got {other:?}"))),
        };
        if items.len() != N {
            return Err(DeError::msg(format!(
                "expected array of {N} elements, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::msg("array length changed during conversion"))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = match value {
                    Value::Array(items) => items,
                    other => return Err(DeError::msg(format!("expected tuple array got {other:?}"))),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::msg(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Support helpers invoked by the generated derive code. Not a stable
/// API — matching upstream's convention of an out-of-contract module.
pub mod __private {
    use super::{BTreeMap, DeError, Deserialize, Value};

    /// Interprets `value` as an object, naming `ty` in the error.
    pub fn as_object<'a>(
        value: &'a Value,
        ty: &str,
    ) -> Result<&'a BTreeMap<String, Value>, DeError> {
        match value {
            Value::Object(map) => Ok(map),
            other => Err(DeError::msg(format!("expected {ty} object, got {other:?}"))),
        }
    }

    /// Interprets `value` as an array, naming `ty` in the error.
    pub fn as_array<'a>(value: &'a Value, ty: &str) -> Result<&'a Vec<Value>, DeError> {
        match value {
            Value::Array(items) => Ok(items),
            other => Err(DeError::msg(format!("expected {ty} array, got {other:?}"))),
        }
    }

    /// Extracts and deserializes a struct field. A missing key
    /// deserializes from `Null`, which lets `Option` fields default to
    /// `None` while non-optional fields report the absence.
    pub fn field<T: Deserialize>(
        map: &BTreeMap<String, Value>,
        key: &str,
    ) -> Result<T, DeError> {
        match map.get(key) {
            Some(v) => T::from_value(v)
                .map_err(|e| DeError::msg(format!("field `{key}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::msg(format!("missing field `{key}`"))),
        }
    }

    /// Reads a tag discriminant (a string under `key`) from an object.
    pub fn tag<'a>(
        map: &'a BTreeMap<String, Value>,
        key: &str,
        ty: &str,
    ) -> Result<&'a str, DeError> {
        match map.get(key) {
            Some(Value::Str(s)) => Ok(s),
            Some(other) => Err(DeError::msg(format!(
                "tag `{key}` of {ty} must be a string, got {other:?}"
            ))),
            None => Err(DeError::msg(format!("missing tag `{key}` for {ty}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        let giant = u128::MAX - 3;
        assert_eq!(u128::from_value(&giant.to_value()), Ok(giant));
    }

    #[test]
    fn option_none_from_missing() {
        let map = BTreeMap::new();
        let missing: Option<u8> = __private::field(&map, "absent").unwrap();
        assert_eq!(missing, None);
        let err = __private::field::<u8>(&map, "absent").unwrap_err();
        assert!(format!("{err}").contains("missing field"));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u8, "a".to_string()), (2, "b".to_string())];
        assert_eq!(Vec::<(u8, String)>::from_value(&v.to_value()), Ok(v));
        let arr = [9u8; 4];
        assert_eq!(<[u8; 4]>::from_value(&arr.to_value()), Ok(arr));
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 1.5f64);
        assert_eq!(BTreeMap::<String, f64>::from_value(&map.to_value()), Ok(map));
    }

    #[test]
    fn wrong_shape_reports_type() {
        let err = u8::from_value(&Value::Str("no".into())).unwrap_err();
        assert!(format!("{err}").contains("expected u8"));
    }
}
