//! Offline shim of the `criterion` benchmark harness.
//!
//! Implements the group-based API the workspace's benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `throughput`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros — with a simple warm-up + measure loop over
//! `std::time::Instant`. No statistics, plots or baselines: each
//! benchmark reports one mean ns/iter line. `--test` mode (what
//! `cargo bench -- --test` passes) runs every routine exactly once so CI
//! can validate benches cheaply.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a harness configured from the process arguments
    /// (recognizes `--test`; everything else is ignored).
    pub fn from_args() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Whether the harness runs in single-iteration validation mode.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let test_mode = self.test_mode;
        run_one("", &id.into(), test_mode, f);
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

/// Declared throughput for a group, echoed in reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark's display identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; reported throughput is not
    /// currently derived in the shim's one-line output.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.test_mode, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.test_mode, |b| f(b, input));
        self
    }

    /// Ends the group. (No cross-benchmark reporting in the shim.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine.
pub struct Bencher {
    test_mode: bool,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`, keeping its return value alive via
    /// `black_box` so the work isn't optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.mean_ns = Some(0.0);
            return;
        }
        // Warm up for at least 5ms to size the measurement batch.
        let warmup_budget = Duration::from_millis(5);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Measure for ~50ms, capped to keep pathological routines bounded.
        let target_iters = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 5_000_000);
        let measure_start = Instant::now();
        for _ in 0..target_iters {
            std::hint::black_box(routine());
        }
        let total = measure_start.elapsed();
        self.mean_ns = Some(total.as_nanos() as f64 / target_iters as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, test_mode: bool, mut f: F) {
    let mut bencher = Bencher { test_mode, mean_ns: None };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    };
    match bencher.mean_ns {
        Some(ns) if !test_mode => println!("{label}: {ns:.1} ns/iter"),
        Some(_) => println!("{label}: ok (test mode)"),
        None => println!("{label}: no measurement (b.iter never called)"),
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut calls = 0;
        let mut b = Bencher { test_mode: true, mean_ns: None };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.mean_ns, Some(0.0));
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("sha256", 4096).label, "sha256/4096");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn measurement_produces_a_mean() {
        let mut b = Bencher { test_mode: false, mean_ns: None };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.mean_ns.unwrap() >= 0.0);
    }
}
